//! Boolean connectives: memoised Shannon-expansion `apply` and negation.

use crate::manager::{Bdd, NodeId, Op};

impl Bdd {
    /// Conjunction (set intersection of pattern sets).
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(Op::And, f, g)
    }

    /// Disjunction — the `bdd.or` set-union primitive of Algorithm 1.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or (symmetric difference of pattern sets).
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(Op::Xor, f, g)
    }

    /// Difference `f ∧ ¬g` (patterns in `f` but not in `g`).
    pub fn diff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.apply(Op::Diff, f, g)
    }

    /// Negation (set complement).
    pub fn not(&mut self, f: NodeId) -> NodeId {
        if f == NodeId::ZERO {
            return NodeId::ONE;
        }
        if f == NodeId::ONE {
            return NodeId::ZERO;
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let node = self.nodes[f.index()];
        let low = self.not(node.low);
        let high = self.not(node.high);
        let r = self.mk_node(node.var, low, high);
        self.not_cache.insert(f, r);
        r
    }

    /// If-then-else `(f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal shortcuts.
        match f {
            NodeId::ONE => return g,
            NodeId::ZERO => return h,
            _ => {}
        }
        if g == h {
            return g;
        }
        if g == NodeId::ONE && h == NodeId::ZERO {
            return f;
        }
        // Compose from the memoised binary connectives; ite is used rarely
        // (construction-time only), so composing keeps the cache simple.
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// Implication check: `f ⇒ g`, i.e. the pattern set of `f` is contained
    /// in the pattern set of `g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> bool {
        self.diff(f, g) == NodeId::ZERO
    }

    fn apply(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        if let Some(t) = terminal_case(op, f, g) {
            return t;
        }
        // Normalise commutative operations so (f,g) and (g,f) share a slot.
        let (f, g) = match op {
            Op::And | Op::Or | Op::Xor if g < f => (g, f),
            _ => (f, g),
        };
        if let Some(&r) = self.apply_cache.get(&(op, f, g)) {
            return r;
        }
        let lf = self.level(f);
        let lg = self.level(g);
        let var = lf.min(lg);
        let (f0, f1) = if lf == var {
            let n = self.nodes[f.index()];
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g0, g1) = if lg == var {
            let n = self.nodes[g.index()];
            (n.low, n.high)
        } else {
            (g, g)
        };
        let low = self.apply(op, f0, g0);
        let high = self.apply(op, f1, g1);
        let r = self.mk_node(var, low, high);
        self.apply_cache.insert((op, f, g), r);
        r
    }
}

/// Resolves an operation when at least one operand is a terminal or the
/// operands coincide; returns `None` when recursion is required.
fn terminal_case(op: Op, f: NodeId, g: NodeId) -> Option<NodeId> {
    match op {
        Op::And => match (f, g) {
            (NodeId::ZERO, _) | (_, NodeId::ZERO) => Some(NodeId::ZERO),
            (NodeId::ONE, x) | (x, NodeId::ONE) => Some(x),
            _ if f == g => Some(f),
            _ => None,
        },
        Op::Or => match (f, g) {
            (NodeId::ONE, _) | (_, NodeId::ONE) => Some(NodeId::ONE),
            (NodeId::ZERO, x) | (x, NodeId::ZERO) => Some(x),
            _ if f == g => Some(f),
            _ => None,
        },
        Op::Xor => match (f, g) {
            (NodeId::ZERO, x) | (x, NodeId::ZERO) => Some(x),
            _ if f == g => Some(NodeId::ZERO),
            _ => None,
        },
        Op::Diff => match (f, g) {
            (NodeId::ZERO, _) => Some(NodeId::ZERO),
            (_, NodeId::ONE) => Some(NodeId::ZERO),
            (x, NodeId::ZERO) => Some(x),
            _ if f == g => Some(NodeId::ZERO),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::Bdd;

    fn all_assignments(n: usize) -> Vec<Vec<bool>> {
        (0..(1usize << n))
            .map(|m| (0..n).map(|i| (m >> i) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn and_or_match_truth_tables() {
        let mut bdd = Bdd::new(3);
        let x0 = bdd.var(0);
        let x2 = bdd.var(2);
        let a = bdd.and(x0, x2);
        let o = bdd.or(x0, x2);
        for asg in all_assignments(3) {
            assert_eq!(bdd.eval(a, &asg), asg[0] && asg[2]);
            assert_eq!(bdd.eval(o, &asg), asg[0] || asg[2]);
        }
    }

    #[test]
    fn xor_and_diff_match_truth_tables() {
        let mut bdd = Bdd::new(2);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let x = bdd.xor(x0, x1);
        let d = bdd.diff(x0, x1);
        for asg in all_assignments(2) {
            assert_eq!(bdd.eval(x, &asg), asg[0] ^ asg[1]);
            assert_eq!(bdd.eval(d, &asg), asg[0] && !asg[1]);
        }
    }

    #[test]
    fn not_is_involution() {
        let mut bdd = Bdd::new(3);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let f = bdd.or(x0, x1);
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn de_morgan_holds_canonically() {
        let mut bdd = Bdd::new(3);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let and = bdd.and(x0, x1);
        let lhs = bdd.not(and);
        let n0 = bdd.not(x0);
        let n1 = bdd.not(x1);
        let rhs = bdd.or(n0, n1);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_matches_definition() {
        let mut bdd = Bdd::new(3);
        let f = bdd.var(0);
        let g = bdd.var(1);
        let h = bdd.var(2);
        let r = bdd.ite(f, g, h);
        for asg in all_assignments(3) {
            let expect = if asg[0] { asg[1] } else { asg[2] };
            assert_eq!(bdd.eval(r, &asg), expect);
        }
    }

    #[test]
    fn implies_detects_subset() {
        let mut bdd = Bdd::new(2);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let conj = bdd.and(x0, x1);
        assert!(bdd.implies(conj, x0));
        assert!(!bdd.implies(x0, conj));
    }

    #[test]
    fn operations_are_idempotent_on_equal_operands() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        assert_eq!(bdd.and(x, x), x);
        assert_eq!(bdd.or(x, x), x);
        assert_eq!(bdd.xor(x, x), bdd.zero());
        assert_eq!(bdd.diff(x, x), bdd.zero());
    }

    #[test]
    fn union_of_cubes_contains_both() {
        let mut bdd = Bdd::new(4);
        let p = bdd.cube_from_bools(&[true, false, true, false]);
        let q = bdd.cube_from_bools(&[false, false, true, true]);
        let u = bdd.or(p, q);
        assert!(bdd.eval(u, &[true, false, true, false]));
        assert!(bdd.eval(u, &[false, false, true, true]));
        assert!(!bdd.eval(u, &[true, true, true, true]));
    }
}
