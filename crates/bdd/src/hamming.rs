//! Hamming-ball dilation and minimum-distance queries.
//!
//! These are the operations that turn a set of visited activation patterns
//! into the paper's γ-comfort zone (Definition 2) and that let a monitor
//! report *how far* an unseen pattern is from the zone.

use crate::manager::{Bdd, NodeId, VarId};
use std::collections::HashMap;

impl Bdd {
    /// Enlarges a pattern set by all patterns at Hamming distance ≤ 1
    /// (Algorithm 1, lines 9–14): the union over every variable `j` of
    /// `∃ x_j . f`.
    ///
    /// Because `f ⇒ ∃x_j.f`, the result always contains `f` itself, so
    /// iterating this map `γ` times yields the full radius-`γ` ball.
    pub fn dilate_once(&mut self, f: NodeId) -> NodeId {
        let mut acc = NodeId::ZERO;
        for v in 0..self.num_vars as VarId {
            let e = self.exists(f, v);
            acc = self.or(acc, e);
        }
        // A function over zero variables has no quantification to apply.
        if self.num_vars == 0 {
            f
        } else {
            acc
        }
    }

    /// Enlarges a pattern set by all patterns at Hamming distance ≤ `gamma`:
    /// `gamma` repetitions of [`Bdd::dilate_once`].
    ///
    /// This is the construction of `Z^γ_c` from `Z^0_c` in Definition 2 of
    /// the paper.
    pub fn dilate(&mut self, f: NodeId, gamma: u32) -> NodeId {
        let mut acc = f;
        for _ in 0..gamma {
            let next = self.dilate_once(acc);
            if next == acc {
                break; // fixpoint: the ball saturated the whole space
            }
            acc = next;
        }
        acc
    }

    /// Restricted dilation that only flips variables in `vars`.
    ///
    /// Useful when a monitor watches a neuron subset and wants generalization
    /// confined to the watched positions.
    pub fn dilate_once_within(&mut self, f: NodeId, vars: &[VarId]) -> NodeId {
        if vars.is_empty() {
            return f;
        }
        let mut acc = NodeId::ZERO;
        for &v in vars {
            let e = self.exists(f, v);
            acc = self.or(acc, e);
        }
        acc
    }

    /// Minimum Hamming distance from `pattern` to any satisfying assignment
    /// of `f`, or `None` if `f` is unsatisfiable.
    ///
    /// Runs in time linear in the number of nodes of `f` via memoised
    /// shortest-path recursion: at a node testing variable `v`, following the
    /// branch that agrees with `pattern[v]` costs 0 and the disagreeing
    /// branch costs 1; variables skipped by the diagram cost 0 because the
    /// function does not depend on them.
    ///
    /// The monitor uses this to report *how far outside* the comfort zone an
    /// input fell, a refinement of the binary verdict discussed around
    /// Figure 2 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != num_vars`.
    pub fn min_hamming_distance(&self, f: NodeId, pattern: &[bool]) -> Option<u32> {
        assert_eq!(
            pattern.len(),
            self.num_vars,
            "pattern length must equal the variable count"
        );
        let mut memo: HashMap<NodeId, Option<u32>> = HashMap::new();
        self.min_dist_rec(f, pattern, &mut memo)
    }

    fn min_dist_rec(
        &self,
        f: NodeId,
        pattern: &[bool],
        memo: &mut HashMap<NodeId, Option<u32>>,
    ) -> Option<u32> {
        if f == NodeId::ONE {
            return Some(0);
        }
        if f == NodeId::ZERO {
            return None;
        }
        if let Some(&d) = memo.get(&f) {
            return d;
        }
        let node = self.nodes[f.index()];
        let bit = pattern[node.var as usize];
        let agree = if bit { node.high } else { node.low };
        let disagree = if bit { node.low } else { node.high };
        let d_agree = self.min_dist_rec(agree, pattern, memo);
        let d_disagree = self
            .min_dist_rec(disagree, pattern, memo)
            .map(|d| d.saturating_add(1));
        let d = match (d_agree, d_disagree) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        memo.insert(f, d);
        d
    }

    /// Budget-bounded [`Bdd::min_hamming_distance`]: the minimum Hamming
    /// distance from `pattern` to any satisfying assignment of `f`, but
    /// only if that distance is at most `budget` — `None` otherwise
    /// (which conflates "unsatisfiable" with "further than the budget";
    /// callers that must distinguish ask the unbounded query).
    ///
    /// Two early exits keep the common cases cheap: a pattern **inside**
    /// the set is answered by a single root-to-terminal [`Bdd::eval`]
    /// walk (distance 0, no DP at all), and during the search any branch
    /// whose accumulated flips exceed `budget` is pruned rather than
    /// expanded — a pattern far from the whole set exhausts the budget
    /// near the root and returns `None` without sweeping the diagram.
    /// Memoisation is per `(node, remaining budget)`, so the worst case
    /// is `O(nodes × budget)`; for the small budgets the graded monitor
    /// uses (≤ γ + 2) the pruned frontier is typically a small fraction
    /// of the diagram.
    ///
    /// Agrees with [`Bdd::min_hamming_distance`] whenever the true
    /// distance is within `budget` (pinned by property tests).
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != num_vars`.
    pub fn min_hamming_distance_within(
        &self,
        f: NodeId,
        pattern: &[bool],
        budget: u32,
    ) -> Option<u32> {
        assert_eq!(
            pattern.len(),
            self.num_vars,
            "pattern length must equal the variable count"
        );
        if self.eval(f, pattern) {
            return Some(0);
        }
        if f == NodeId::ZERO {
            return None;
        }
        let mut memo: HashMap<(NodeId, u32), Option<u32>> = HashMap::new();
        self.bounded_dist_rec(f, pattern, budget, &mut memo)
    }

    /// Minimum flips to reach `ONE` from `f`, provided it is ≤ `slack`.
    fn bounded_dist_rec(
        &self,
        f: NodeId,
        pattern: &[bool],
        slack: u32,
        memo: &mut HashMap<(NodeId, u32), Option<u32>>,
    ) -> Option<u32> {
        if f == NodeId::ONE {
            return Some(0);
        }
        if f == NodeId::ZERO {
            return None;
        }
        if let Some(&d) = memo.get(&(f, slack)) {
            return d;
        }
        let node = self.nodes[f.index()];
        let bit = pattern[node.var as usize];
        let agree = if bit { node.high } else { node.low };
        let disagree = if bit { node.low } else { node.high };
        let d_agree = self.bounded_dist_rec(agree, pattern, slack, memo);
        // The disagreeing branch costs one flip; prune it outright when
        // the budget is spent instead of recursing.
        let d_disagree = if slack == 0 {
            None
        } else {
            self.bounded_dist_rec(disagree, pattern, slack - 1, memo)
                .map(|d| d + 1)
        };
        let d = match (d_agree, d_disagree) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        memo.insert((f, slack), d);
        d
    }
}

#[cfg(test)]
mod tests {
    use crate::Bdd;

    fn ball_brute_force(seed: &[bool], gamma: u32) -> Vec<Vec<bool>> {
        let n = seed.len();
        (0..(1usize << n))
            .map(|m| (0..n).map(|i| (m >> i) & 1 == 1).collect::<Vec<bool>>())
            .filter(|p| {
                let d: u32 = p.iter().zip(seed).map(|(a, b)| u32::from(a != b)).sum();
                d <= gamma
            })
            .collect()
    }

    #[test]
    fn dilate_once_is_radius_one_ball() {
        let mut bdd = Bdd::new(5);
        let seed = [true, false, true, true, false];
        let f = bdd.cube_from_bools(&seed);
        let z1 = bdd.dilate_once(f);
        for m in 0..32usize {
            let p: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let dist: u32 = p.iter().zip(&seed).map(|(a, b)| u32::from(a != b)).sum();
            assert_eq!(bdd.eval(z1, &p), dist <= 1, "pattern {p:?}");
        }
    }

    #[test]
    fn dilate_gamma_matches_brute_force_ball() {
        let mut bdd = Bdd::new(6);
        let seed = [false, true, true, false, false, true];
        let f = bdd.cube_from_bools(&seed);
        for gamma in 0..4 {
            let z = bdd.dilate(f, gamma);
            let ball = ball_brute_force(&seed, gamma);
            let count = bdd.sat_count(z);
            assert_eq!(count, ball.len() as f64, "gamma={gamma}");
            for p in &ball {
                assert!(bdd.eval(z, p));
            }
        }
    }

    #[test]
    fn dilation_is_monotone() {
        let mut bdd = Bdd::new(6);
        let p = bdd.cube_from_bools(&[true, true, false, false, true, false]);
        let q = bdd.cube_from_bools(&[false, false, false, true, true, true]);
        let f = bdd.or(p, q);
        let mut prev = f;
        for _ in 0..4 {
            let next = bdd.dilate_once(prev);
            assert!(bdd.implies(prev, next), "Z^g must be a subset of Z^g+1");
            prev = next;
        }
    }

    #[test]
    fn dilation_saturates_to_full_space() {
        let mut bdd = Bdd::new(4);
        let f = bdd.cube_from_bools(&[true, true, true, true]);
        let z = bdd.dilate(f, 4);
        assert_eq!(z, bdd.one());
        // Asking for more than num_vars steps hits the fixpoint early.
        let z2 = bdd.dilate(f, 100);
        assert_eq!(z2, bdd.one());
    }

    #[test]
    fn dilate_zero_steps_is_identity() {
        let mut bdd = Bdd::new(3);
        let f = bdd.cube_from_bools(&[true, false, false]);
        assert_eq!(bdd.dilate(f, 0), f);
    }

    #[test]
    fn dilate_within_only_flips_listed_vars() {
        let mut bdd = Bdd::new(3);
        let f = bdd.cube_from_bools(&[false, false, false]);
        let z = bdd.dilate_once_within(f, &[1]);
        assert!(bdd.eval(z, &[false, true, false]));
        assert!(!bdd.eval(z, &[true, false, false]));
        assert!(bdd.eval(z, &[false, false, false]));
    }

    #[test]
    fn min_distance_zero_inside() {
        let mut bdd = Bdd::new(4);
        let f = bdd.cube_from_bools(&[true, false, true, false]);
        assert_eq!(
            bdd.min_hamming_distance(f, &[true, false, true, false]),
            Some(0)
        );
    }

    #[test]
    fn min_distance_counts_flips() {
        let mut bdd = Bdd::new(4);
        let f = bdd.cube_from_bools(&[true, false, true, false]);
        assert_eq!(
            bdd.min_hamming_distance(f, &[false, false, true, true]),
            Some(2)
        );
        assert_eq!(
            bdd.min_hamming_distance(f, &[false, true, false, true]),
            Some(4)
        );
    }

    #[test]
    fn min_distance_of_empty_set_is_none() {
        let bdd = Bdd::new(3);
        assert_eq!(bdd.min_hamming_distance(bdd.zero(), &[true; 3]), None);
    }

    #[test]
    fn min_distance_over_union_takes_minimum() {
        let mut bdd = Bdd::new(5);
        let p = bdd.cube_from_bools(&[true; 5]);
        let q = bdd.cube_from_bools(&[false; 5]);
        let f = bdd.or(p, q);
        // One bit away from all-false, four away from all-true.
        assert_eq!(
            bdd.min_hamming_distance(f, &[true, false, false, false, false]),
            Some(1)
        );
    }

    #[test]
    fn bounded_distance_matches_unbounded_within_budget() {
        let mut bdd = Bdd::new(5);
        let p = bdd.cube_from_bools(&[true; 5]);
        let q = bdd.cube_from_bools(&[false; 5]);
        let f = bdd.or(p, q);
        for m in 0..32usize {
            let probe: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let exact = bdd.min_hamming_distance(f, &probe);
            for budget in 0..=5u32 {
                let bounded = bdd.min_hamming_distance_within(f, &probe, budget);
                let expected = exact.filter(|&d| d <= budget);
                assert_eq!(bounded, expected, "probe {probe:?} budget {budget}");
            }
        }
    }

    #[test]
    fn bounded_distance_of_empty_set_is_none() {
        let bdd = Bdd::new(4);
        assert_eq!(
            bdd.min_hamming_distance_within(bdd.zero(), &[true; 4], 4),
            None
        );
        assert_eq!(
            bdd.min_hamming_distance_within(bdd.one(), &[true; 4], 0),
            Some(0)
        );
    }

    #[test]
    fn bounded_distance_zero_budget_is_membership() {
        let mut bdd = Bdd::new(4);
        let f = bdd.cube_from_bools(&[true, false, true, false]);
        assert_eq!(
            bdd.min_hamming_distance_within(f, &[true, false, true, false], 0),
            Some(0)
        );
        assert_eq!(
            bdd.min_hamming_distance_within(f, &[false, false, true, false], 0),
            None
        );
    }

    #[test]
    fn min_distance_agrees_with_dilation_membership() {
        let mut bdd = Bdd::new(6);
        let p = bdd.cube_from_bools(&[true, false, true, false, true, false]);
        let q = bdd.cube_from_bools(&[false, false, false, true, true, true]);
        let f = bdd.or(p, q);
        let probe = [true, true, true, true, true, true];
        let d = bdd.min_hamming_distance(f, &probe).unwrap();
        // probe is a member of the dilated set exactly from radius d onward.
        for gamma in 0..6 {
            let z = bdd.dilate(f, gamma);
            assert_eq!(bdd.eval(z, &probe), gamma >= d, "gamma={gamma} d={d}");
        }
    }
}
