//! Error type for BDD operations.

use std::error::Error;
use std::fmt;

/// Errors raised by [`crate::Bdd`] operations.
///
/// Most manager methods panic on programmer errors (foreign node ids,
/// out-of-range variables) because those indicate a bug at the call site;
/// `BddError` is reserved for conditions that depend on runtime data, such as
/// restoring a snapshot built for a different variable count.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// A snapshot declared `expected` variables but the manager has `actual`.
    VarCountMismatch {
        /// Variable count recorded in the snapshot.
        expected: usize,
        /// Variable count of the receiving manager.
        actual: usize,
    },
    /// A snapshot refers to a node index that it never defined.
    CorruptSnapshot {
        /// The offending node index.
        index: usize,
    },
    /// A snapshot node is not reduced (its low and high children are equal)
    /// or violates the variable ordering.
    MalformedSnapshot {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::VarCountMismatch { expected, actual } => write!(
                f,
                "snapshot was built for {expected} variables but manager has {actual}"
            ),
            BddError::CorruptSnapshot { index } => {
                write!(f, "snapshot refers to undefined node index {index}")
            }
            BddError::MalformedSnapshot { reason } => {
                write!(f, "malformed snapshot: {reason}")
            }
        }
    }
}

impl Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let err = BddError::VarCountMismatch {
            expected: 4,
            actual: 8,
        };
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('8'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BddError>();
    }
}
