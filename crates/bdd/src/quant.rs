//! Existential / universal quantification and variable restriction.

use crate::manager::{Bdd, NodeId, VarId};

impl Bdd {
    /// Existential quantification `∃ var . f` — the `bdd.exists` primitive
    /// of Algorithm 1, line 12.
    ///
    /// The result contains every assignment that can be completed to a
    /// satisfying assignment of `f` by choosing either value for `var`;
    /// consequently `f ⇒ ∃var.f`, which is what makes the union of
    /// per-variable quantifications a Hamming-distance-1 enlargement.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn exists(&mut self, f: NodeId, var: VarId) -> NodeId {
        assert!(
            (var as usize) < self.num_vars,
            "variable {var} out of range"
        );
        self.exists_rec(f, var)
    }

    fn exists_rec(&mut self, f: NodeId, var: VarId) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        let node = self.nodes[f.index()];
        if node.var > var {
            // `var` does not occur below this node (ordering), nothing to do.
            return f;
        }
        if node.var == var {
            return self.or(node.low, node.high);
        }
        if let Some(&r) = self.quant_cache.get(&(f, var)) {
            return r;
        }
        let low = self.exists_rec(node.low, var);
        let high = self.exists_rec(node.high, var);
        let r = self.mk_node(node.var, low, high);
        self.quant_cache.insert((f, var), r);
        r
    }

    /// Existential quantification over several variables.
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range.
    pub fn exists_many(&mut self, f: NodeId, vars: &[VarId]) -> NodeId {
        let mut acc = f;
        for &v in vars {
            acc = self.exists(acc, v);
        }
        acc
    }

    /// Universal quantification `∀ var . f = ¬∃ var . ¬f`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn forall(&mut self, f: NodeId, var: VarId) -> NodeId {
        let nf = self.not(f);
        let e = self.exists(nf, var);
        self.not(e)
    }

    /// Restriction (cofactor) `f[var := val]`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn restrict(&mut self, f: NodeId, var: VarId, val: bool) -> NodeId {
        assert!(
            (var as usize) < self.num_vars,
            "variable {var} out of range"
        );
        self.restrict_rec(f, var, val)
    }

    fn restrict_rec(&mut self, f: NodeId, var: VarId, val: bool) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        let node = self.nodes[f.index()];
        if node.var > var {
            return f;
        }
        if node.var == var {
            return if val { node.high } else { node.low };
        }
        let low = self.restrict_rec(node.low, var, val);
        let high = self.restrict_rec(node.high, var, val);
        self.mk_node(node.var, low, high)
    }

    /// Support of `f`: the sorted list of variables the function depends on.
    pub fn support(&self, f: NodeId) -> Vec<VarId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut in_support = vec![false; self.num_vars];
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            let nd = &self.nodes[n.index()];
            in_support[nd.var as usize] = true;
            stack.push(nd.low);
            stack.push(nd.high);
        }
        in_support
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as VarId))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::Bdd;

    #[test]
    fn exists_on_paper_example() {
        // Paper, Section II: Z0 = {001}; exists over variable j yields
        // {-01}, {0-1}, {00-} respectively.
        let mut bdd = Bdd::new(3);
        let z0 = bdd.cube_from_bools(&[false, false, true]);

        let e0 = bdd.exists(z0, 0);
        assert!(bdd.eval(e0, &[false, false, true]));
        assert!(bdd.eval(e0, &[true, false, true]));
        assert!(!bdd.eval(e0, &[false, true, true]));

        let e1 = bdd.exists(z0, 1);
        assert!(bdd.eval(e1, &[false, true, true]));
        assert!(!bdd.eval(e1, &[true, false, true]));

        let e2 = bdd.exists(z0, 2);
        assert!(bdd.eval(e2, &[false, false, false]));
        assert!(!bdd.eval(e2, &[false, true, false]));
    }

    #[test]
    fn exists_is_weakening() {
        let mut bdd = Bdd::new(4);
        let p = bdd.cube_from_bools(&[true, true, false, true]);
        let q = bdd.cube_from_bools(&[false, true, false, false]);
        let f = bdd.or(p, q);
        for v in 0..4 {
            let e = bdd.exists(f, v);
            assert!(bdd.implies(f, e), "f must imply exists(f, {v})");
        }
    }

    #[test]
    fn exists_is_idempotent_per_variable() {
        let mut bdd = Bdd::new(3);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let f = bdd.and(x0, x1);
        let e = bdd.exists(f, 0);
        let ee = bdd.exists(e, 0);
        assert_eq!(e, ee);
    }

    #[test]
    fn exists_commutes() {
        let mut bdd = Bdd::new(4);
        let p = bdd.cube_from_bools(&[true, false, true, false]);
        let q = bdd.cube_from_bools(&[false, true, true, true]);
        let f = bdd.or(p, q);
        let a = bdd.exists(f, 1);
        let ab = bdd.exists(a, 3);
        let b = bdd.exists(f, 3);
        let ba = bdd.exists(b, 1);
        assert_eq!(ab, ba);
    }

    #[test]
    fn forall_is_dual() {
        let mut bdd = Bdd::new(2);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let f = bdd.or(x0, x1);
        // forall x0 (x0 | x1) == x1
        let g = bdd.forall(f, 0);
        assert_eq!(g, x1);
    }

    #[test]
    fn restrict_cofactors() {
        let mut bdd = Bdd::new(2);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let f = bdd.and(x0, x1);
        assert_eq!(bdd.restrict(f, 0, true), x1);
        assert_eq!(bdd.restrict(f, 0, false), bdd.zero());
    }

    #[test]
    fn shannon_expansion_reconstructs() {
        let mut bdd = Bdd::new(3);
        let p = bdd.cube_from_bools(&[true, false, true]);
        let q = bdd.cube_from_bools(&[false, false, false]);
        let f = bdd.or(p, q);
        let f1 = bdd.restrict(f, 0, true);
        let f0 = bdd.restrict(f, 0, false);
        let x = bdd.var(0);
        let rebuilt = bdd.ite(x, f1, f0);
        assert_eq!(f, rebuilt);
    }

    #[test]
    fn support_lists_dependent_vars() {
        let mut bdd = Bdd::new(5);
        let x1 = bdd.var(1);
        let x4 = bdd.var(4);
        let f = bdd.xor(x1, x4);
        assert_eq!(bdd.support(f), vec![1, 4]);
        assert!(bdd.support(bdd.one()).is_empty());
    }

    #[test]
    fn exists_removes_from_support() {
        let mut bdd = Bdd::new(3);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let f = bdd.and(x0, x1);
        let e = bdd.exists(f, 1);
        assert_eq!(bdd.support(e), vec![0]);
    }
}
