//! The BDD manager: arena of hash-consed nodes, unique table, caches.

use std::collections::HashMap;

/// Index of a boolean variable, `0 ..< num_vars`.
///
/// Variables are ordered by their index: variable `0` is tested first on
/// every root-to-terminal path.  For activation-pattern monitors, variable
/// `i` corresponds to the `i`-th monitored neuron.
pub type VarId = u32;

/// A reference to a BDD node (and thus to the boolean function rooted there).
///
/// `NodeId`s are only meaningful together with the [`Bdd`] manager that
/// produced them.  The terminals are [`Bdd::zero`] (id 0) and [`Bdd::one`]
/// (id 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-false terminal.
    pub const ZERO: NodeId = NodeId(0);
    /// The constant-true terminal.
    pub const ONE: NodeId = NodeId(1);

    /// Returns the raw index of this node inside its manager's arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is one of the two terminal nodes.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// A decision node: tests `var`, follows `low` when the variable is 0 and
/// `high` when it is 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: VarId,
    pub low: NodeId,
    pub high: NodeId,
}

/// Binary operations memoised in the apply cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    Diff,
}

/// Occupancy statistics of a [`Bdd`] manager, as reported by [`Bdd::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Total nodes allocated in the arena (including the two terminals).
    pub allocated_nodes: usize,
    /// Entries currently held in the binary-operation cache.
    pub apply_cache_entries: usize,
    /// Entries currently held in the quantification cache.
    pub quant_cache_entries: usize,
    /// Number of variables the manager was created with.
    pub num_vars: usize,
}

/// A manager for reduced ordered binary decision diagrams over a fixed set
/// of variables.
///
/// All functions created by one manager share structure through a unique
/// table (hash-consing), so two [`NodeId`]s produced by the same manager are
/// equal **iff** they denote the same boolean function.
///
/// # Example
///
/// ```
/// use naps_bdd::Bdd;
///
/// let mut bdd = Bdd::new(2);
/// let x0 = bdd.var(0);
/// let x1 = bdd.var(1);
/// let f = bdd.and(x0, x1);
/// let g = bdd.not(f);
/// // De Morgan: !(x0 & x1) == !x0 | !x1
/// let nx0 = bdd.not(x0);
/// let nx1 = bdd.not(x1);
/// let h = bdd.or(nx0, nx1);
/// assert_eq!(g, h);
/// ```
#[derive(Debug, Clone)]
pub struct Bdd {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: HashMap<Node, NodeId>,
    pub(crate) apply_cache: HashMap<(Op, NodeId, NodeId), NodeId>,
    pub(crate) not_cache: HashMap<NodeId, NodeId>,
    pub(crate) quant_cache: HashMap<(NodeId, VarId), NodeId>,
    pub(crate) num_vars: usize,
}

impl Bdd {
    /// Creates a manager for functions over `num_vars` boolean variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` exceeds `u32::MAX - 2` (a limit that is far
    /// beyond the practical BDD variable budget of a few hundred the paper
    /// discusses).
    pub fn new(num_vars: usize) -> Self {
        assert!(
            num_vars < (u32::MAX - 2) as usize,
            "variable count {num_vars} out of range"
        );
        // Terminals occupy ids 0 and 1 with a pseudo-variable beyond every
        // real variable so ordering comparisons stay uniform.
        let term_var = num_vars as VarId;
        let zero = Node {
            var: term_var,
            low: NodeId::ZERO,
            high: NodeId::ZERO,
        };
        let one = Node {
            var: term_var,
            low: NodeId::ONE,
            high: NodeId::ONE,
        };
        Bdd {
            nodes: vec![zero, one],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            quant_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of variables of this manager.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constant-false function (empty pattern set).
    #[inline]
    pub fn zero(&self) -> NodeId {
        NodeId::ZERO
    }

    /// The constant-true function (the full pattern space `{0,1}^d`).
    #[inline]
    pub fn one(&self) -> NodeId {
        NodeId::ONE
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: VarId) -> NodeId {
        assert!(
            (var as usize) < self.num_vars,
            "variable {var} out of range"
        );
        self.mk_node(var, NodeId::ZERO, NodeId::ONE)
    }

    /// The negated projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nvar(&mut self, var: VarId) -> NodeId {
        assert!(
            (var as usize) < self.num_vars,
            "variable {var} out of range"
        );
        self.mk_node(var, NodeId::ONE, NodeId::ZERO)
    }

    /// Variable tested at `node`, or `None` for terminals.
    #[inline]
    pub fn node_var(&self, node: NodeId) -> Option<VarId> {
        if node.is_terminal() {
            None
        } else {
            Some(self.nodes[node.index()].var)
        }
    }

    /// Low (`var = 0`) child of a decision node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is a terminal.
    #[inline]
    pub fn low(&self, node: NodeId) -> NodeId {
        assert!(!node.is_terminal(), "terminal has no children");
        self.nodes[node.index()].low
    }

    /// High (`var = 1`) child of a decision node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is a terminal.
    #[inline]
    pub fn high(&self, node: NodeId) -> NodeId {
        assert!(!node.is_terminal(), "terminal has no children");
        self.nodes[node.index()].high
    }

    /// Hash-consing constructor: returns the canonical node for
    /// `(var, low, high)`, creating it only if it does not exist.
    pub(crate) fn mk_node(&mut self, var: VarId, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low; // reduction rule
        }
        let key = Node { var, low, high };
        if let Some(&id) = self.unique.get(&key) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(key);
        self.unique.insert(key, id);
        id
    }

    /// The "level" used for ordering comparisons; terminals sort last.
    #[inline]
    pub(crate) fn level(&self, node: NodeId) -> VarId {
        if node.is_terminal() {
            self.num_vars as VarId
        } else {
            self.nodes[node.index()].var
        }
    }

    /// Evaluates the function under a full assignment.
    ///
    /// This is the runtime membership query of the monitor: a single walk
    /// from the root that visits at most one node per variable, i.e. time
    /// linear in the number of monitored neurons.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, node: NodeId, assignment: &[bool]) -> bool {
        assert_eq!(
            assignment.len(),
            self.num_vars,
            "assignment length must equal the variable count"
        );
        let mut cur = node;
        while !cur.is_terminal() {
            let n = &self.nodes[cur.index()];
            cur = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        cur == NodeId::ONE
    }

    /// Encodes a single full assignment (a minterm / activation pattern) as
    /// a one-path BDD — the `bdd.encode` primitive of Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != num_vars`.
    pub fn cube_from_bools(&mut self, bits: &[bool]) -> NodeId {
        assert_eq!(
            bits.len(),
            self.num_vars,
            "pattern length must equal the variable count"
        );
        let mut acc = NodeId::ONE;
        for (i, &b) in bits.iter().enumerate().rev() {
            let var = i as VarId;
            acc = if b {
                self.mk_node(var, NodeId::ZERO, acc)
            } else {
                self.mk_node(var, acc, NodeId::ZERO)
            };
        }
        acc
    }

    /// Encodes a partial assignment: `Some(b)` constrains a variable,
    /// `None` leaves it free.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != num_vars`.
    pub fn cube_from_partial(&mut self, bits: &[Option<bool>]) -> NodeId {
        assert_eq!(
            bits.len(),
            self.num_vars,
            "pattern length must equal the variable count"
        );
        let mut acc = NodeId::ONE;
        for (i, &b) in bits.iter().enumerate().rev() {
            let var = i as VarId;
            acc = match b {
                Some(true) => self.mk_node(var, NodeId::ZERO, acc),
                Some(false) => self.mk_node(var, acc, NodeId::ZERO),
                None => acc,
            };
        }
        acc
    }

    /// Number of decision nodes reachable from `node` (terminals excluded).
    pub fn node_count(&self, node: NodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![node];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            count += 1;
            let nd = &self.nodes[n.index()];
            stack.push(nd.low);
            stack.push(nd.high);
        }
        count
    }

    /// Manager-wide occupancy statistics.
    pub fn stats(&self) -> BddStats {
        BddStats {
            allocated_nodes: self.nodes.len(),
            apply_cache_entries: self.apply_cache.len() + self.not_cache.len(),
            quant_cache_entries: self.quant_cache.len(),
            num_vars: self.num_vars,
        }
    }

    /// Drops all operation caches (the unique table is kept, canonicity is
    /// unaffected).  Useful between construction phases to bound memory.
    pub fn clear_caches(&mut self) {
        self.apply_cache.clear();
        self.not_cache.clear();
        self.quant_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let bdd = Bdd::new(4);
        assert_eq!(bdd.zero(), NodeId::ZERO);
        assert_eq!(bdd.one(), NodeId::ONE);
        assert!(bdd.zero().is_terminal());
        assert!(bdd.one().is_terminal());
    }

    #[test]
    fn var_is_canonical() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(1);
        let b = bdd.var(1);
        assert_eq!(a, b);
        assert_ne!(bdd.var(0), bdd.var(1));
    }

    #[test]
    fn reduction_rule_collapses_equal_children() {
        let mut bdd = Bdd::new(2);
        let one = bdd.one();
        let n = bdd.mk_node(0, one, one);
        assert_eq!(n, one);
    }

    #[test]
    fn eval_walks_pattern() {
        let mut bdd = Bdd::new(3);
        let f = bdd.cube_from_bools(&[true, false, true]);
        assert!(bdd.eval(f, &[true, false, true]));
        assert!(!bdd.eval(f, &[true, true, true]));
        assert!(!bdd.eval(f, &[false, false, true]));
    }

    #[test]
    fn cube_from_partial_leaves_free_vars() {
        let mut bdd = Bdd::new(3);
        let f = bdd.cube_from_partial(&[Some(true), None, Some(false)]);
        assert!(bdd.eval(f, &[true, false, false]));
        assert!(bdd.eval(f, &[true, true, false]));
        assert!(!bdd.eval(f, &[true, true, true]));
    }

    #[test]
    fn node_count_of_cube_equals_num_vars() {
        let mut bdd = Bdd::new(5);
        let f = bdd.cube_from_bools(&[true; 5]);
        assert_eq!(bdd.node_count(f), 5);
        assert_eq!(bdd.node_count(bdd.one()), 0);
    }

    #[test]
    fn nvar_is_complement_of_var() {
        let mut bdd = Bdd::new(2);
        let v = bdd.var(0);
        let nv = bdd.nvar(0);
        assert!(bdd.eval(v, &[true, false]));
        assert!(!bdd.eval(nv, &[true, false]));
        assert!(bdd.eval(nv, &[false, false]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut bdd = Bdd::new(2);
        let _ = bdd.var(2);
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn eval_wrong_length_panics() {
        let mut bdd = Bdd::new(2);
        let f = bdd.var(0);
        let _ = bdd.eval(f, &[true]);
    }

    #[test]
    fn stats_report_allocations() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let _ = bdd.and(a, b);
        let s = bdd.stats();
        assert!(s.allocated_nodes >= 4); // 2 terminals + 2+ decision nodes
        assert_eq!(s.num_vars, 4);
    }

    #[test]
    fn clear_caches_preserves_semantics() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(2);
        let f = bdd.or(a, b);
        bdd.clear_caches();
        let f2 = bdd.or(a, b);
        assert_eq!(f, f2);
        assert!(bdd.eval(f2, &[false, false, true]));
    }

    #[test]
    fn manager_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Bdd>();
    }
}

impl Bdd {
    /// Rebuilds the given roots into a fresh manager, dropping every node
    /// not reachable from them — a copying garbage collection.
    ///
    /// Dilation sweeps allocate many intermediate diagrams; once a monitor
    /// is final, compacting shrinks the arena to exactly the live nodes.
    /// Returns the new manager and the translated roots (same order).
    pub fn compact(&self, roots: &[NodeId]) -> (Bdd, Vec<NodeId>) {
        let mut fresh = Bdd::new(self.num_vars);
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        map.insert(NodeId::ZERO, NodeId::ZERO);
        map.insert(NodeId::ONE, NodeId::ONE);
        let new_roots = roots
            .iter()
            .map(|&r| self.copy_into(r, &mut fresh, &mut map))
            .collect();
        (fresh, new_roots)
    }

    fn copy_into(
        &self,
        node: NodeId,
        fresh: &mut Bdd,
        map: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if let Some(&m) = map.get(&node) {
            return m;
        }
        let n = self.nodes[node.index()];
        let low = self.copy_into(n.low, fresh, map);
        let high = self.copy_into(n.high, fresh, map);
        let created = fresh.mk_node(n.var, low, high);
        map.insert(node, created);
        created
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;

    #[test]
    fn compact_preserves_semantics_and_drops_garbage() {
        let mut bdd = Bdd::new(6);
        // Create garbage: many intermediate functions.
        let mut keep = bdd.zero();
        for i in 0..20u64 {
            let bits: Vec<bool> = (0..6).map(|b| (i >> b) & 1 == 1).collect();
            let cube = bdd.cube_from_bools(&bits);
            let tmp = bdd.dilate_once(cube); // garbage unless i == 19
            if i % 3 == 0 {
                keep = bdd.or(keep, tmp);
            }
        }
        let before = bdd.stats().allocated_nodes;
        let (fresh, roots) = bdd.compact(&[keep]);
        assert_eq!(roots.len(), 1);
        let after = fresh.stats().allocated_nodes;
        assert!(after < before, "no shrinkage: {before} -> {after}");
        for m in 0..64usize {
            let a: Vec<bool> = (0..6).map(|b| (m >> b) & 1 == 1).collect();
            assert_eq!(bdd.eval(keep, &a), fresh.eval(roots[0], &a));
        }
    }

    #[test]
    fn compact_shares_structure_between_roots() {
        let mut bdd = Bdd::new(4);
        let p = bdd.cube_from_bools(&[true, false, true, false]);
        let q = bdd.dilate_once(p);
        let (fresh, roots) = bdd.compact(&[p, q]);
        // p implies q in the fresh manager too.
        let mut fresh = fresh;
        assert!(fresh.implies(roots[0], roots[1]));
        // Terminals map to themselves.
        let (f2, r2) = fresh.compact(&[fresh.zero(), fresh.one()]);
        assert_eq!(r2, vec![NodeId::ZERO, NodeId::ONE]);
        let _ = f2;
    }
}
