//! Variable reordering.
//!
//! BDD size is notoriously sensitive to the variable order.  For
//! activation-pattern monitors the default order is the neuron index,
//! which is arbitrary; reordering the monitored neurons can shrink the
//! stored comfort zones (less memory on the deployed ECU) without
//! changing their semantics — the membership walk stays linear in the
//! variable count either way.
//!
//! Two entry points:
//!
//! * [`Bdd::permute`] rebuilds chosen roots under an explicit permutation
//!   (e.g. one computed from activation statistics or gradient saliency
//!   by `naps-core`).
//! * [`Bdd::sift`] searches for a good order with greedy adjacent-swap
//!   hill climbing, the simplest member of the sifting family.  Each
//!   trial swap rebuilds the diagrams, so the search costs
//!   `O(passes · num_vars)` rebuilds — intended for offline monitor
//!   preparation, not for runtime.

use crate::manager::{Bdd, NodeId, VarId};
use std::collections::HashMap;

impl Bdd {
    /// Number of distinct decision nodes reachable from any of `roots`
    /// (terminals excluded) — the live size of a multi-rooted diagram.
    pub fn live_node_count(&self, roots: &[NodeId]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n.is_terminal() || seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            count += 1;
            let nd = &self.nodes[n.index()];
            stack.push(nd.low);
            stack.push(nd.high);
        }
        count
    }

    /// Rebuilds `roots` into a fresh manager under the variable
    /// permutation `perm`, where old variable `v` becomes new variable
    /// `perm[v]`.
    ///
    /// Semantics are preserved up to renaming: for every assignment `a`,
    /// `old.eval(root, a) == new.eval(root', a')` with
    /// `a'[perm[v]] = a[v]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0 .. num_vars`.
    ///
    /// # Example
    ///
    /// ```
    /// use naps_bdd::Bdd;
    ///
    /// let mut bdd = Bdd::new(3);
    /// let f = bdd.cube_from_bools(&[true, false, true]);
    /// // Move variable 0 to position 2 (and shift the others down).
    /// let (fresh, roots) = bdd.permute(&[f], &[2, 0, 1]);
    /// // Old assignment [1,0,1] becomes [0,1,1] under the renaming.
    /// assert!(fresh.eval(roots[0], &[false, true, true]));
    /// ```
    pub fn permute(&self, roots: &[NodeId], perm: &[VarId]) -> (Bdd, Vec<NodeId>) {
        assert_eq!(perm.len(), self.num_vars, "permutation length mismatch");
        let mut hit = vec![false; self.num_vars];
        for &p in perm {
            assert!(
                (p as usize) < self.num_vars && !hit[p as usize],
                "not a permutation of 0..num_vars"
            );
            hit[p as usize] = true;
        }
        let mut fresh = Bdd::new(self.num_vars);
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        let new_roots = roots
            .iter()
            .map(|&r| self.permute_node(r, perm, &mut fresh, &mut map))
            .collect();
        (fresh, new_roots)
    }

    fn permute_node(
        &self,
        node: NodeId,
        perm: &[VarId],
        fresh: &mut Bdd,
        map: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if node.is_terminal() {
            return node;
        }
        if let Some(&m) = map.get(&node) {
            return m;
        }
        let n = self.nodes[node.index()];
        let low = self.permute_node(n.low, perm, fresh, map);
        let high = self.permute_node(n.high, perm, fresh, map);
        // The permuted variable may now sit below its children's levels,
        // so rebuild through `ite`, which restores the ordering invariant.
        let var = fresh.var(perm[n.var as usize]);
        let created = fresh.ite(var, high, low);
        map.insert(node, created);
        created
    }

    /// Greedy adjacent-swap sifting: repeatedly sweeps over neighbouring
    /// variable pairs, keeps a swap whenever it shrinks the live node
    /// count of `roots`, and stops after `max_passes` sweeps or when a
    /// sweep finds no improvement.
    ///
    /// Returns the reordered manager, the translated roots, and the
    /// overall permutation (old variable → new variable, suitable for
    /// translating query assignments).
    ///
    /// # Panics
    ///
    /// Panics if `max_passes` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use naps_bdd::Bdd;
    ///
    /// let mut bdd = Bdd::new(4);
    /// let f = bdd.cube_from_bools(&[true, true, false, true]);
    /// let (sifted, roots, perm) = bdd.sift(&[f], 2);
    /// // Semantics survive under the reported renaming.
    /// let mut renamed = vec![false; 4];
    /// for (v, &b) in [true, true, false, true].iter().enumerate() {
    ///     renamed[perm[v] as usize] = b;
    /// }
    /// assert!(sifted.eval(roots[0], &renamed));
    /// ```
    pub fn sift(&self, roots: &[NodeId], max_passes: usize) -> (Bdd, Vec<NodeId>, Vec<VarId>) {
        assert!(max_passes > 0, "max_passes must be positive");
        let n = self.num_vars;
        let identity: Vec<VarId> = (0..n as VarId).collect();
        // Start from a compacted copy so trial rebuilds do not drag
        // garbage along.
        let (mut best, mut best_roots) = self.permute(roots, &identity);
        let mut best_size = best.live_node_count(&best_roots);
        let mut total_perm = identity.clone();

        for _ in 0..max_passes {
            let mut improved = false;
            for pos in 0..n.saturating_sub(1) {
                let mut swap = identity.clone();
                swap[pos] = (pos + 1) as VarId;
                swap[pos + 1] = pos as VarId;
                let (trial, trial_roots) = best.permute(&best_roots, &swap);
                // Drop construction garbage before measuring.
                let (trial, trial_roots) = trial.compact(&trial_roots);
                let size = trial.live_node_count(&trial_roots);
                if size < best_size {
                    best = trial;
                    best_roots = trial_roots;
                    best_size = size;
                    for p in &mut total_perm {
                        *p = swap[*p as usize];
                    }
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        (best, best_roots, total_perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `a'[perm[v]] = a[v]`.
    fn apply_perm(assignment: &[bool], perm: &[VarId]) -> Vec<bool> {
        let mut out = vec![false; assignment.len()];
        for (v, &b) in assignment.iter().enumerate() {
            out[perm[v] as usize] = b;
        }
        out
    }

    fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1usize << n).map(move |m| (0..n).map(|b| (m >> b) & 1 == 1).collect())
    }

    #[test]
    fn identity_permutation_is_a_copy() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let b = bdd.var(3);
        let f = bdd.xor(a, b);
        let (fresh, roots) = bdd.permute(&[f], &[0, 1, 2, 3]);
        for a in assignments(4) {
            assert_eq!(bdd.eval(f, &a), fresh.eval(roots[0], &a));
        }
    }

    #[test]
    fn permute_preserves_semantics_up_to_renaming() {
        let mut bdd = Bdd::new(4);
        // f = (x0 & x1) | (!x2 & x3)
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let nx2 = bdd.nvar(2);
        let x3 = bdd.var(3);
        let l = bdd.and(x0, x1);
        let r = bdd.and(nx2, x3);
        let f = bdd.or(l, r);
        let perm: Vec<VarId> = vec![3, 1, 0, 2]; // old v -> new perm[v]
        let (fresh, roots) = bdd.permute(&[f], &perm);
        for a in assignments(4) {
            assert_eq!(
                bdd.eval(f, &a),
                fresh.eval(roots[0], &apply_perm(&a, &perm)),
                "assignment {a:?}"
            );
        }
    }

    #[test]
    fn permute_reverse_order_of_a_cube_keeps_node_count() {
        let mut bdd = Bdd::new(6);
        let f = bdd.cube_from_bools(&[true, false, true, true, false, true]);
        let perm: Vec<VarId> = (0..6).rev().collect();
        let (fresh, roots) = bdd.permute(&[f], &perm);
        // A minterm cube has one node per variable under any order.
        assert_eq!(fresh.node_count(roots[0]), 6);
    }

    #[test]
    fn permute_translates_multiple_roots_with_sharing() {
        let mut bdd = Bdd::new(3);
        let f = bdd.cube_from_bools(&[true, true, false]);
        let g = bdd.dilate_once(f);
        let (fresh, roots) = bdd.permute(&[f, g], &[2, 0, 1]);
        let mut fresh = fresh;
        assert!(
            fresh.implies(roots[0], roots[1]),
            "f ⊆ dilate(f) must survive"
        );
    }

    #[test]
    fn interleaved_vs_blocked_order_changes_size() {
        // The classic example: f = (x0 ↔ x1') & (x2 ↔ x3') is small when
        // related variables are adjacent and blows up when they are far
        // apart.  With 3 pairs the effect is already visible.
        let n = 6;
        let mut bdd = Bdd::new(n);
        let mut f = bdd.one();
        // Pairs under the *bad* order: (0,3), (1,4), (2,5).
        for i in 0..3u32 {
            let a = bdd.var(i);
            let b = bdd.var(i + 3);
            let x = bdd.xor(a, b);
            let eq = bdd.not(x);
            f = bdd.and(f, eq);
        }
        let bad_size = bdd.node_count(f);
        // Permute to adjacency: 0->0, 3->1, 1->2, 4->3, 2->4, 5->5.
        let perm: Vec<VarId> = vec![0, 2, 4, 1, 3, 5];
        let (fresh, roots) = bdd.permute(&[f], &perm);
        let good_size = fresh.node_count(roots[0]);
        assert!(
            good_size < bad_size,
            "adjacent pairing should shrink: {bad_size} -> {good_size}"
        );
        for a in assignments(n) {
            assert_eq!(
                bdd.eval(f, &a),
                fresh.eval(roots[0], &apply_perm(&a, &perm))
            );
        }
    }

    #[test]
    fn sift_never_grows_and_preserves_semantics() {
        // Same pairing function: sifting should rediscover (or beat) the
        // adjacent order starting from the bad one.
        let n = 6;
        let mut bdd = Bdd::new(n);
        let mut f = bdd.one();
        for i in 0..3u32 {
            let a = bdd.var(i);
            let b = bdd.var(i + 3);
            let x = bdd.xor(a, b);
            let eq = bdd.not(x);
            f = bdd.and(f, eq);
        }
        let before = bdd.node_count(f);
        let (sifted, roots, perm) = bdd.sift(&[f], 10);
        let after = sifted.node_count(roots[0]);
        assert!(
            after <= before,
            "sifting grew the diagram: {before} -> {after}"
        );
        assert!(
            after < before,
            "pairing function should improve under sifting"
        );
        for a in assignments(n) {
            assert_eq!(
                bdd.eval(f, &a),
                sifted.eval(roots[0], &apply_perm(&a, &perm)),
                "assignment {a:?}"
            );
        }
    }

    #[test]
    fn sift_on_symmetric_function_is_a_fixpoint() {
        // Totally symmetric functions have the same size under every
        // order; sifting must terminate after one no-improvement pass.
        let mut bdd = Bdd::new(5);
        let mut f = bdd.zero();
        for v in 0..5u32 {
            let x = bdd.var(v);
            f = bdd.or(f, x);
        }
        let before = bdd.node_count(f);
        let (sifted, roots, perm) = bdd.sift(&[f], 3);
        assert_eq!(sifted.node_count(roots[0]), before);
        assert_eq!(perm, vec![0, 1, 2, 3, 4], "no swap should be kept");
    }

    #[test]
    fn live_node_count_deduplicates_shared_structure() {
        let mut bdd = Bdd::new(4);
        let f = bdd.cube_from_bools(&[true, true, false, true]);
        let g = f; // same function twice
        assert_eq!(bdd.live_node_count(&[f, g]), bdd.node_count(f));
        assert_eq!(bdd.live_node_count(&[]), 0);
        assert_eq!(bdd.live_node_count(&[bdd.one()]), 0);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_target_is_rejected() {
        let mut bdd = Bdd::new(3);
        let f = bdd.var(0);
        let _ = bdd.permute(&[f], &[0, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "permutation length mismatch")]
    fn wrong_length_is_rejected() {
        let mut bdd = Bdd::new(3);
        let f = bdd.var(0);
        let _ = bdd.permute(&[f], &[0, 1]);
    }
}
