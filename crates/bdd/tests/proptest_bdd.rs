//! Property-based tests for the ROBDD package: canonicity, boolean algebra
//! laws, quantification semantics, dilation vs. brute-force Hamming balls.

use naps_bdd::{Bdd, BddSnapshot, NodeId};
use proptest::prelude::*;

const VARS: usize = 7;

/// A random pattern over `VARS` bits.
fn pattern() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), VARS)
}

/// A random small set of patterns.
fn pattern_set() -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(pattern(), 1..8)
}

fn build_set(bdd: &mut Bdd, pats: &[Vec<bool>]) -> NodeId {
    let mut acc = bdd.zero();
    for p in pats {
        let c = bdd.cube_from_bools(p);
        acc = bdd.or(c, acc);
    }
    acc
}

fn hamming(a: &[bool], b: &[bool]) -> u32 {
    a.iter().zip(b).map(|(x, y)| u32::from(x != y)).sum()
}

fn all_assignments() -> Vec<Vec<bool>> {
    (0..(1usize << VARS))
        .map(|m| (0..VARS).map(|i| (m >> i) & 1 == 1).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hash-consing canonicity: building the same set in two different
    /// insertion orders yields the identical node.
    #[test]
    fn insertion_order_is_irrelevant(pats in pattern_set()) {
        let mut bdd = Bdd::new(VARS);
        let fwd = build_set(&mut bdd, &pats);
        let rev: Vec<_> = pats.iter().rev().cloned().collect();
        let bwd = build_set(&mut bdd, &rev);
        prop_assert_eq!(fwd, bwd);
    }

    /// Membership after construction matches the seed set exactly (γ = 0
    /// soundness + exactness).
    #[test]
    fn stored_set_is_exact(pats in pattern_set(), probe in pattern()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let expect = pats.iter().any(|p| p == &probe);
        prop_assert_eq!(bdd.eval(f, &probe), expect);
    }

    /// `dilate(γ)` is exactly the union of radius-γ Hamming balls around
    /// the seeds.
    #[test]
    fn dilation_is_hamming_ball(pats in pattern_set(), gamma in 0u32..3) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let z = bdd.dilate(f, gamma);
        for probe in all_assignments() {
            let dist = pats.iter().map(|p| hamming(p, &probe)).min().unwrap();
            prop_assert_eq!(bdd.eval(z, &probe), dist <= gamma,
                "probe {:?} dist {} gamma {}", probe, dist, gamma);
        }
    }

    /// `min_hamming_distance` equals the brute-force minimum distance.
    #[test]
    fn min_distance_is_exact(pats in pattern_set(), probe in pattern()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let expect = pats.iter().map(|p| hamming(p, &probe)).min().unwrap();
        prop_assert_eq!(bdd.min_hamming_distance(f, &probe), Some(expect));
    }

    /// De Morgan + double negation over random sets.
    #[test]
    fn boolean_algebra_laws(a in pattern_set(), b in pattern_set()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &a);
        let g = build_set(&mut bdd, &b);
        let and = bdd.and(f, g);
        let lhs = bdd.not(and);
        let nf = bdd.not(f);
        let ng = bdd.not(g);
        let rhs = bdd.or(nf, ng);
        prop_assert_eq!(lhs, rhs);
        let nnf = {
            let n = bdd.not(f);
            bdd.not(n)
        };
        prop_assert_eq!(nnf, f);
    }

    /// Distributivity: f ∧ (g ∨ h) == (f ∧ g) ∨ (f ∧ h).
    #[test]
    fn distributivity(a in pattern_set(), b in pattern_set(), c in pattern_set()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &a);
        let g = build_set(&mut bdd, &b);
        let h = build_set(&mut bdd, &c);
        let gh = bdd.or(g, h);
        let lhs = bdd.and(f, gh);
        let fg = bdd.and(f, g);
        let fh = bdd.and(f, h);
        let rhs = bdd.or(fg, fh);
        prop_assert_eq!(lhs, rhs);
    }

    /// sat_count equals the number of distinct seed patterns (γ = 0).
    #[test]
    fn sat_count_matches_set_size(pats in pattern_set()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let mut uniq = pats.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(bdd.sat_count(f), uniq.len() as f64);
    }

    /// sat_iter enumerates exactly the satisfying assignments.
    #[test]
    fn sat_iter_is_complete_and_sound(pats in pattern_set(), gamma in 0u32..2) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let z = bdd.dilate(f, gamma);
        let mut got: Vec<Vec<bool>> = bdd.sat_iter(z).collect();
        got.sort();
        got.dedup();
        prop_assert_eq!(got.len() as f64, bdd.sat_count(z));
        for a in &got {
            prop_assert!(bdd.eval(z, a));
        }
    }

    /// exists is a weakening and removes the variable from the support.
    #[test]
    fn exists_weakens_and_drops_support(pats in pattern_set(), v in 0u32..(VARS as u32)) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let e = bdd.exists(f, v);
        prop_assert!(bdd.implies(f, e));
        prop_assert!(!bdd.support(e).contains(&v));
    }

    /// Snapshot capture/restore is semantics-preserving into a fresh manager.
    #[test]
    fn snapshot_roundtrip(pats in pattern_set(), gamma in 0u32..2) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let z = bdd.dilate(f, gamma);
        let snap = BddSnapshot::capture(&bdd, z);
        let mut fresh = Bdd::new(VARS);
        let r = snap.restore(&mut fresh).expect("restore");
        for probe in all_assignments() {
            prop_assert_eq!(bdd.eval(z, &probe), fresh.eval(r, &probe));
        }
    }

    /// Dilation distributes over union:
    /// dilate(f ∨ g) == dilate(f) ∨ dilate(g).
    #[test]
    fn dilation_distributes_over_union(a in pattern_set(), b in pattern_set()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &a);
        let g = build_set(&mut bdd, &b);
        let u = bdd.or(f, g);
        let lhs = bdd.dilate_once(u);
        let df = bdd.dilate_once(f);
        let dg = bdd.dilate_once(g);
        let rhs = bdd.or(df, dg);
        prop_assert_eq!(lhs, rhs);
    }
}

/// A random permutation of `0..VARS`, built by ranking random keys.
fn permutation() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), VARS).prop_map(|keys| {
        let mut idx: Vec<usize> = (0..VARS).collect();
        idx.sort_by_key(|&i| (keys[i], i));
        let mut perm = vec![0u32; VARS];
        for (pos, &i) in idx.iter().enumerate() {
            perm[i] = pos as u32;
        }
        perm
    })
}

fn apply_perm(assignment: &[bool], perm: &[u32]) -> Vec<bool> {
    let mut out = vec![false; assignment.len()];
    for (v, &b) in assignment.iter().enumerate() {
        out[perm[v] as usize] = b;
    }
    out
}

fn all_assignments_again() -> impl Iterator<Item = Vec<bool>> {
    (0..1usize << VARS).map(|m| (0..VARS).map(|b| (m >> b) & 1 == 1).collect())
}

proptest! {
    /// Permutation preserves semantics up to variable renaming, including
    /// through a dilation.
    #[test]
    fn permute_preserves_semantics(pats in pattern_set(), perm in permutation(), gamma in 0u32..2) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let z = bdd.dilate(f, gamma);
        let (fresh, roots) = bdd.permute(&[f, z], &perm);
        for a in all_assignments_again() {
            let pa = apply_perm(&a, &perm);
            prop_assert_eq!(bdd.eval(f, &a), fresh.eval(roots[0], &pa));
            prop_assert_eq!(bdd.eval(z, &a), fresh.eval(roots[1], &pa));
        }
    }

    /// Permuting twice with perm then its inverse restores the original
    /// node count (canonicity under renaming round-trip).
    #[test]
    fn permute_inverse_roundtrips_size(pats in pattern_set(), perm in permutation()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let (once, r1) = bdd.permute(&[f], &perm);
        let mut inverse = vec![0u32; VARS];
        for (v, &p) in perm.iter().enumerate() {
            inverse[p as usize] = v as u32;
        }
        let (back, r2) = once.permute(&r1, &inverse);
        prop_assert_eq!(back.node_count(r2[0]), bdd.node_count(f));
        for a in all_assignments_again() {
            prop_assert_eq!(bdd.eval(f, &a), back.eval(r2[0], &a));
        }
    }

    /// Sifting never grows the diagram and preserves semantics under the
    /// reported permutation.
    #[test]
    fn sift_shrinks_or_keeps_and_preserves(pats in pattern_set(), gamma in 0u32..2) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let z = bdd.dilate(f, gamma);
        let before = bdd.node_count(z);
        let (sifted, roots, perm) = bdd.sift(&[z], 4);
        prop_assert!(sifted.node_count(roots[0]) <= before);
        for a in all_assignments_again() {
            prop_assert_eq!(bdd.eval(z, &a), sifted.eval(roots[0], &apply_perm(&a, &perm)));
        }
    }

    /// live_node_count of shared roots never exceeds the per-root sum and
    /// never undercounts a single root.
    #[test]
    fn live_node_count_bounds(a in pattern_set(), b in pattern_set()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &a);
        let g = build_set(&mut bdd, &b);
        let live = bdd.live_node_count(&[f, g]);
        prop_assert!(live <= bdd.node_count(f) + bdd.node_count(g));
        prop_assert!(live >= bdd.node_count(f));
        prop_assert!(live >= bdd.node_count(g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Hamming distance computed through the BDD is a metric on
    /// patterns: symmetric, zero iff equal, and obeying the triangle
    /// inequality.  Single patterns are embedded as one-path cubes, so
    /// `d(a, b) = min_hamming_distance(cube(a), b)`.
    #[test]
    fn hamming_is_a_metric(a in pattern(), b in pattern(), c in pattern()) {
        let mut bdd = Bdd::new(VARS);
        let ca = bdd.cube_from_bools(&a);
        let cb = bdd.cube_from_bools(&b);
        let d = |bdd: &Bdd, cube, probe: &[bool]| {
            bdd.min_hamming_distance(cube, probe).expect("cube is satisfiable")
        };
        // Symmetry: distance from a's cube to b equals b's cube to a.
        prop_assert_eq!(d(&bdd, ca, &b), d(&bdd, cb, &a));
        // Identity of indiscernibles: zero iff the patterns are equal.
        prop_assert_eq!(d(&bdd, ca, &b) == 0, a == b);
        prop_assert_eq!(d(&bdd, ca, &a), 0);
        // Triangle inequality through an intermediate pattern.
        prop_assert!(d(&bdd, ca, &c) <= d(&bdd, ca, &b) + d(&bdd, cb, &c));
    }

    /// Point-to-set distance: `d(F, p)` is a lower bound realised by some
    /// member of `F`, and dilating by the reported distance admits `p`.
    #[test]
    fn set_distance_is_tight(pats in pattern_set(), probe in pattern()) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let d = bdd.min_hamming_distance(f, &probe).expect("non-empty set");
        let z = bdd.dilate(f, d);
        prop_assert!(bdd.eval(z, &probe), "probe not admitted at its own distance");
        if d > 0 {
            let tight = bdd.dilate(f, d - 1);
            prop_assert!(!bdd.eval(tight, &probe), "distance overestimates");
        }
    }

    /// Snapshot-side queries agree with the manager: `BddSnapshot::eval`
    /// and `BddSnapshot::min_hamming_distance` are the lock-free serving
    /// path and must be bit-identical to `Bdd::eval` /
    /// `Bdd::min_hamming_distance` on every assignment.
    #[test]
    fn snapshot_queries_match_manager(pats in pattern_set(), gamma in 0u32..3) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let z = bdd.dilate(f, gamma);
        for (root, snap) in [(f, BddSnapshot::capture(&bdd, f)), (z, BddSnapshot::capture(&bdd, z))] {
            for probe in all_assignments_again() {
                prop_assert_eq!(snap.eval(&probe), bdd.eval(root, &probe));
                prop_assert_eq!(
                    snap.min_hamming_distance(&probe),
                    bdd.min_hamming_distance(root, &probe)
                );
            }
        }
    }

    /// The budget-bounded distance DP is the unbounded one truncated at
    /// the budget, on BOTH query paths: whenever the true distance is
    /// within the budget the bounded query returns it exactly, and
    /// beyond the budget it returns `None` — manager recursion and
    /// lock-free snapshot search alike, through a dilation.
    #[test]
    fn bounded_distance_is_truncated_unbounded(
        pats in pattern_set(),
        gamma in 0u32..3,
        budget in 0u32..((VARS as u32) + 2),
    ) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let z = bdd.dilate(f, gamma);
        for root in [f, z] {
            let snap = BddSnapshot::capture(&bdd, root);
            for probe in all_assignments_again() {
                let exact = bdd.min_hamming_distance(root, &probe);
                let expect = exact.filter(|&d| d <= budget);
                prop_assert_eq!(
                    bdd.min_hamming_distance_within(root, &probe, budget),
                    expect,
                    "manager path, probe {:?} budget {}", probe, budget
                );
                prop_assert_eq!(
                    snap.min_hamming_distance_within(&probe, budget),
                    expect,
                    "snapshot path, probe {:?} budget {}", probe, budget
                );
            }
        }
    }

    /// Terminal snapshots answer queries like the constant functions.
    #[test]
    fn snapshot_terminal_queries(probe in pattern()) {
        let bdd = Bdd::new(VARS);
        let empty = BddSnapshot::capture(&bdd, bdd.zero());
        let full = BddSnapshot::capture(&bdd, bdd.one());
        prop_assert!(!empty.eval(&probe));
        prop_assert!(full.eval(&probe));
        prop_assert_eq!(empty.min_hamming_distance(&probe), None);
        prop_assert_eq!(full.min_hamming_distance(&probe), Some(0));
    }
}
