//! Property-based pinning of the compiled zone evaluators against the
//! walked snapshot: [`CompiledZone`] is the frozen serving path, the
//! interpreted [`BddSnapshot`] queries are the oracle, and every query
//! kind — membership, unbounded min-Hamming, budget-bounded min-Hamming —
//! must agree bit-for-bit on both the dispatching compiled form (small
//! zones take the enumerated index) and the forced flat form
//! ([`CompiledZone::compile_flat_only`]), including the bit-sliced block
//! evaluator, on random zones and on every degenerate shape (empty, full,
//! width 0, budget 0 and ≥ width).

use naps_bdd::{bit_slice_block, pack_words, Bdd, BddSnapshot, CompiledZone, NodeId};
use proptest::prelude::*;

const VARS: usize = 7;
/// A second width crossing the 64-bit word boundary, so packed keys and
/// sliced variable lanes need more than one word.
const WIDE: usize = 70;

fn pattern(width: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), width)
}

fn pattern_set(width: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(pattern(width), 1..8)
}

fn build_set(bdd: &mut Bdd, pats: &[Vec<bool>]) -> NodeId {
    let mut acc = bdd.zero();
    for p in pats {
        let c = bdd.cube_from_bools(p);
        acc = bdd.or(c, acc);
    }
    acc
}

fn all_assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1usize << VARS).map(|m| (0..VARS).map(|b| (m >> b) & 1 == 1).collect())
}

/// A dilated random zone captured as a snapshot plus both compiled forms.
fn compile_both(
    pats: &[Vec<bool>],
    gamma: u32,
    width: usize,
) -> (BddSnapshot, CompiledZone, CompiledZone) {
    let mut bdd = Bdd::new(width);
    let f = build_set(&mut bdd, pats);
    let z = bdd.dilate(f, gamma);
    let snap = BddSnapshot::capture(&bdd, z);
    let compiled = CompiledZone::compile(&snap);
    let flat = CompiledZone::compile_flat_only(&snap);
    (snap, compiled, flat)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Membership: compiled dispatch and forced-flat walk both equal the
    /// walked snapshot on every assignment of the cube.
    #[test]
    fn compiled_eval_equals_walked(pats in pattern_set(VARS), gamma in 0u32..3) {
        let (snap, compiled, flat) = compile_both(&pats, gamma, VARS);
        for probe in all_assignments() {
            let expect = snap.eval(&probe);
            prop_assert_eq!(compiled.eval_bools(&probe), expect);
            prop_assert_eq!(flat.eval_bools(&probe), expect);
        }
    }

    /// The bit-sliced block evaluator agrees with the walked snapshot on
    /// every lane, whichever compiled form (the block evaluator always
    /// runs the node array, so `flat` and `compiled` share it — pin the
    /// flat one and the `eval_many` dispatch of both).
    #[test]
    fn bit_sliced_block_equals_walked(pats in pattern_set(VARS), gamma in 0u32..3) {
        let (snap, compiled, flat) = compile_both(&pats, gamma, VARS);
        let packed: Vec<Vec<u64>> = all_assignments().map(|p| pack_words(&p)).collect();
        let expected: Vec<bool> = all_assignments().map(|p| snap.eval(&p)).collect();
        for chunk_start in (0..packed.len()).step_by(64) {
            let chunk: Vec<&[u64]> =
                packed[chunk_start..(chunk_start + 64).min(packed.len())]
                    .iter().map(|w| w.as_slice()).collect();
            let lanes = if chunk.len() == 64 { u64::MAX } else { (1u64 << chunk.len()) - 1 };
            let var_words = bit_slice_block(&chunk, flat.words_per_pattern(), VARS);
            let hits = flat.eval_block(&var_words, lanes);
            for (j, expect) in expected[chunk_start..chunk_start + chunk.len()].iter().enumerate() {
                prop_assert_eq!((hits >> j) & 1 == 1, *expect, "lane {}", chunk_start + j);
            }
        }
        // And the batch dispatch of both compiled forms.
        let refs: Vec<&[u64]> = packed.iter().map(|w| w.as_slice()).collect();
        prop_assert_eq!(&compiled.eval_many(&refs), &expected);
        prop_assert_eq!(&flat.eval_many(&refs), &expected);
    }

    /// Unbounded min-Hamming: both compiled forms equal the walked sweep.
    #[test]
    fn compiled_min_hamming_equals_walked(pats in pattern_set(VARS), gamma in 0u32..3) {
        let (snap, compiled, flat) = compile_both(&pats, gamma, VARS);
        for probe in all_assignments() {
            let expect = snap.min_hamming_distance(&probe);
            prop_assert_eq!(compiled.min_hamming_distance_bools(&probe), expect);
            prop_assert_eq!(flat.min_hamming_distance_bools(&probe), expect);
        }
    }

    /// Budget-bounded min-Hamming: both compiled forms equal the walked
    /// bounded search for every budget from 0 through ≥ width (the
    /// degenerate budgets take the full-sweep fallback on both paths).
    #[test]
    fn compiled_bounded_min_hamming_equals_walked(
        pats in pattern_set(VARS),
        gamma in 0u32..3,
        budget in 0u32..((VARS as u32) + 2),
    ) {
        let (snap, compiled, flat) = compile_both(&pats, gamma, VARS);
        for probe in all_assignments() {
            let expect = snap.min_hamming_distance_within(&probe, budget);
            prop_assert_eq!(
                compiled.min_hamming_distance_within_bools(&probe, budget), expect,
                "small/dispatch path, budget {}", budget
            );
            prop_assert_eq!(
                flat.min_hamming_distance_within_bools(&probe, budget), expect,
                "flat path, budget {}", budget
            );
        }
    }

    /// Multi-word patterns (width > 64): packed keys, sliced lanes and
    /// the bounded DP all agree with the walked snapshot on random
    /// probes and on the seeds themselves.
    #[test]
    fn wide_zones_agree_on_all_query_kinds(
        pats in pattern_set(WIDE),
        probes in proptest::collection::vec(pattern(WIDE), 8..24),
        budget in 0u32..6,
    ) {
        let (snap, compiled, flat) = compile_both(&pats, 1, WIDE);
        for probe in probes.iter().chain(&pats) {
            prop_assert_eq!(compiled.eval_bools(probe), snap.eval(probe));
            prop_assert_eq!(flat.eval_bools(probe), snap.eval(probe));
            prop_assert_eq!(
                compiled.min_hamming_distance_bools(probe),
                snap.min_hamming_distance(probe)
            );
            prop_assert_eq!(
                flat.min_hamming_distance_bools(probe),
                snap.min_hamming_distance(probe)
            );
            let expect = snap.min_hamming_distance_within(probe, budget);
            prop_assert_eq!(compiled.min_hamming_distance_within_bools(probe, budget), expect);
            prop_assert_eq!(flat.min_hamming_distance_within_bools(probe, budget), expect);
        }
        // Batch dispatch over every probe at once (sliced when amortised).
        let packed: Vec<Vec<u64>> = probes.iter().map(|p| pack_words(p)).collect();
        let refs: Vec<&[u64]> = packed.iter().map(|w| w.as_slice()).collect();
        let expected: Vec<bool> = probes.iter().map(|p| snap.eval(p)).collect();
        prop_assert_eq!(&compiled.eval_many(&refs), &expected);
        prop_assert_eq!(&flat.eval_many(&refs), &expected);
    }

    /// Degenerate zones: empty and full at VARS wide, plus width 0, on
    /// every query kind and both compiled forms, budgets 0 and ≥ width
    /// included.
    #[test]
    fn degenerate_zones_agree(probe in pattern(VARS), budget in 0u32..((VARS as u32) + 2)) {
        let bdd = Bdd::new(VARS);
        for root in [bdd.zero(), bdd.one()] {
            let snap = BddSnapshot::capture(&bdd, root);
            for zone in [CompiledZone::compile(&snap), CompiledZone::compile_flat_only(&snap)] {
                prop_assert_eq!(zone.eval_bools(&probe), snap.eval(&probe));
                prop_assert_eq!(
                    zone.min_hamming_distance_bools(&probe),
                    snap.min_hamming_distance(&probe)
                );
                prop_assert_eq!(
                    zone.min_hamming_distance_within_bools(&probe, budget),
                    snap.min_hamming_distance_within(&probe, budget)
                );
            }
        }
        // Width 0: the only pattern is the empty one.
        let bdd0 = Bdd::new(0);
        for root in [bdd0.zero(), bdd0.one()] {
            let snap = BddSnapshot::capture(&bdd0, root);
            for zone in [CompiledZone::compile(&snap), CompiledZone::compile_flat_only(&snap)] {
                prop_assert_eq!(zone.eval_bools(&[]), snap.eval(&[]));
                prop_assert_eq!(
                    zone.min_hamming_distance_bools(&[]),
                    snap.min_hamming_distance(&[])
                );
                for b in [0u32, 1, u32::MAX] {
                    prop_assert_eq!(
                        zone.min_hamming_distance_within_bools(&[], b),
                        snap.min_hamming_distance_within(&[], b)
                    );
                }
            }
        }
    }

    /// Compilation is deterministic: compiling the same snapshot twice
    /// yields `==` evaluators — the invariant persistence relies on when
    /// it recompiles instead of serializing.
    #[test]
    fn compilation_is_deterministic(pats in pattern_set(VARS), gamma in 0u32..3) {
        let mut bdd = Bdd::new(VARS);
        let f = build_set(&mut bdd, &pats);
        let z = bdd.dilate(f, gamma);
        let snap = BddSnapshot::capture(&bdd, z);
        prop_assert_eq!(CompiledZone::compile(&snap), CompiledZone::compile(&snap));
        prop_assert_eq!(
            CompiledZone::compile_flat_only(&snap),
            CompiledZone::compile_flat_only(&snap)
        );
    }
}
