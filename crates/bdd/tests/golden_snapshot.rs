//! Golden-file tests for [`BddSnapshot`] serialization.
//!
//! A small comfort zone (fixed seed patterns, γ = 1 dilation — no RNG, so
//! the fixture is immune to vendored-RNG retunings) is serialized to a
//! checked-in JSON fixture under `tests/golden/`.  The tests pin the wire
//! format byte-for-byte and the restored semantics query-for-query: a
//! change to either is a deliberate format break and must re-bless the
//! fixture with `GOLDEN_BLESS=1 cargo test -p naps-bdd golden`.

use naps_bdd::{Bdd, BddSnapshot, NodeId};
use std::path::PathBuf;

const WIDTH: usize = 8;

/// The fixture's seed patterns: three hand-picked 8-bit patterns.
const SEEDS: [[bool; WIDTH]; 3] = [
    [true, false, true, false, true, false, true, false],
    [true, true, false, false, true, true, false, false],
    [false, false, false, true, true, true, false, true],
];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("comfort_zone_w8_g1.json")
}

/// Builds the deterministic fixture zone: the γ=1 dilation of `SEEDS`.
fn build_fixture() -> (Bdd, NodeId) {
    let mut bdd = Bdd::new(WIDTH);
    let mut seeds = bdd.zero();
    for s in &SEEDS {
        let cube = bdd.cube_from_bools(s);
        seeds = bdd.or(seeds, cube);
    }
    let zone = bdd.dilate(seeds, 1);
    (bdd, zone)
}

fn serialize_fixture() -> (BddSnapshot, String) {
    let (bdd, zone) = build_fixture();
    let snap = BddSnapshot::capture(&bdd, zone);
    let json = serde_json::to_string_pretty(&snap).expect("serialize");
    (snap, json)
}

#[test]
fn golden_fixture_is_byte_identical() {
    let (_, json) = serialize_fixture();
    let path = fixture_path();
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &json).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run GOLDEN_BLESS=1 cargo test -p naps-bdd golden",
            path.display()
        )
    });
    assert_eq!(
        json, golden,
        "BddSnapshot wire format changed; if intentional, re-bless with \
         GOLDEN_BLESS=1 cargo test -p naps-bdd golden"
    );
}

#[test]
fn golden_fixture_restores_with_identical_semantics() {
    let golden = std::fs::read_to_string(fixture_path()).expect("golden fixture present");
    let snap: BddSnapshot = serde_json::from_str(&golden).expect("deserialize fixture");
    assert_eq!(snap.num_vars(), WIDTH);

    // Byte-for-byte round-trip: deserialize → serialize is the identity.
    let rewritten = serde_json::to_string_pretty(&snap).expect("serialize");
    assert_eq!(rewritten, golden, "fixture does not round-trip bytewise");

    // Semantic equality: the restored zone answers every membership and
    // distance query exactly like the freshly built one, both through a
    // manager and through the lock-free snapshot walk.
    let (bdd, zone) = build_fixture();
    let mut fresh = Bdd::new(WIDTH);
    let restored = snap.restore(&mut fresh).expect("restore");
    for m in 0..(1u32 << WIDTH) {
        let probe: Vec<bool> = (0..WIDTH).map(|i| (m >> i) & 1 == 1).collect();
        let want = bdd.eval(zone, &probe);
        assert_eq!(fresh.eval(restored, &probe), want, "probe {probe:?}");
        assert_eq!(snap.eval(&probe), want, "snapshot walk at {probe:?}");
        assert_eq!(
            snap.min_hamming_distance(&probe),
            bdd.min_hamming_distance(zone, &probe),
            "distance at {probe:?}"
        );
    }
}

#[test]
fn golden_fixture_contains_dilated_seeds() {
    let golden = std::fs::read_to_string(fixture_path()).expect("golden fixture present");
    let snap: BddSnapshot = serde_json::from_str(&golden).expect("deserialize fixture");
    for s in &SEEDS {
        assert!(snap.eval(s), "seed {s:?} missing from the golden zone");
        // γ = 1: every one-bit flip of a seed is inside the zone.
        for i in 0..WIDTH {
            let mut flipped = *s;
            flipped[i] = !flipped[i];
            assert!(snap.eval(&flipped), "flip {i} of {s:?} outside the zone");
        }
    }
}
