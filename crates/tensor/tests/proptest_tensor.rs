//! Property-based tests for the tensor substrate: linear-algebra laws and
//! the im2col/col2im adjoint relation on random geometries.

use naps_tensor::{
    col2im, im2col, im2col_into, max_pool2d, max_pool2d_backward, ConvDims, PackedWeights, Tensor,
};
use proptest::prelude::*;

/// Exact bitwise equality on shape and every `f32` element — the
/// equivalence the serving gates demand (plain `==` would conflate
/// `0.0` and `-0.0`).
fn bits_eq(got: &Tensor, want: &Tensor) -> bool {
    got.shape() == want.shape()
        && got
            .data()
            .iter()
            .zip(want.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn tensor(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, m * n)
        .prop_map(move |d| Tensor::from_vec(vec![m, n], d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B) C == A (B C) within f32 tolerance on small random matrices.
    #[test]
    fn matmul_is_associative(
        a in tensor(3, 2), b in tensor(2, 4), c in tensor(4, 2),
    ) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    /// Transpose is an involution and (AB)^T == B^T A^T.
    #[test]
    fn transpose_laws(a in tensor(3, 4), b in tensor(4, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Elementwise ops are pointwise and shape-preserving.
    #[test]
    fn elementwise_laws(a in tensor(2, 5), b in tensor(2, 5)) {
        let sum = a.add(&b);
        let diff = sum.sub(&b);
        for (x, y) in diff.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
        let prod = a.mul(&b);
        for ((p, x), y) in prod.data().iter().zip(a.data()).zip(b.data()) {
            prop_assert!((p - x * y).abs() < 1e-5);
        }
    }

    /// im2col/col2im satisfy the adjoint identity
    /// <im2col(x), g> == <x, col2im(g)> for random geometry and data.
    #[test]
    fn im2col_col2im_are_adjoint(
        c in 1usize..3,
        h in 3usize..6,
        k in 1usize..3,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let dims = ConvDims { in_c: c, in_h: h, in_w: h, k, s: 1 };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(vec![c, h, h], 1.0, &mut rng);
        let g = Tensor::randn(vec![dims.rows(), dims.cols()], 1.0, &mut rng);
        let px = im2col(&x, dims);
        let lhs: f32 = px.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&g, dims);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// Max pooling returns genuine per-window maxima and its backward
    /// routes all gradient mass (conservation).
    #[test]
    fn pooling_laws(seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(vec![2, 4, 4], 1.0, &mut rng);
        let (pooled, arg) = max_pool2d(&x, 2, 4, 4, 2);
        // Every pooled value is attained at its argmax position.
        for (o, &idx) in pooled.data().iter().zip(&arg) {
            prop_assert_eq!(*o, x.data()[idx]);
        }
        // Gradient conservation.
        let g = Tensor::ones(vec![2, 2, 2]);
        let back = max_pool2d_backward(&g, &arg, x.len());
        prop_assert!((back.sum() - g.sum()).abs() < 1e-5);
    }

    /// The `*_into`/`PackedWeights` GEMM paths must be bit-identical to
    /// the per-call kernels — and all of them to the naive ascending-`p`
    /// triple loop — across shapes straddling the 4-row block boundary,
    /// with exact zeros sprinkled in to exercise the sparsity skips.
    #[test]
    fn into_and_packed_gemm_are_bit_identical(
        m in 1usize..10, k in 1usize..9, n in 1usize..7, seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let b = Tensor::randn(vec![k, n], 1.0, &mut rng);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = 0.0;
            }
        }
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    naive[i * n + j] += a.data()[i * k + p] * b.data()[p * n + j];
                }
            }
        }
        let want = Tensor::from_vec(vec![m, n], naive);
        prop_assert!(bits_eq(&a.matmul(&b), &want), "matmul vs naive");
        prop_assert!(bits_eq(&a.transpose().matmul_at(&b), &want), "matmul_at");
        prop_assert!(bits_eq(&a.matmul_bt(&b.transpose()), &want), "matmul_bt");
        // Reused dirty scratch must not taint any variant.
        let mut pack = Tensor::from_vec(vec![2], vec![5., 5.]);
        let mut out = Tensor::from_vec(vec![2], vec![5., 5.]);
        a.matmul_into(&b, &mut out);
        prop_assert!(bits_eq(&out, &want), "matmul_into");
        a.transpose().matmul_at_into(&b, &mut pack, &mut out);
        prop_assert!(bits_eq(&out, &want), "matmul_at_into");
        a.matmul_bt_into(&b.transpose(), &mut pack, &mut out);
        prop_assert!(bits_eq(&out, &want), "matmul_bt_into");
        PackedWeights::pack(&b).matmul_into(&a, &mut out);
        prop_assert!(bits_eq(&out, &want), "packed");
        PackedWeights::pack_transposed(&b.transpose()).matmul_into(&a, &mut out);
        prop_assert!(bits_eq(&out, &want), "packed_transposed");
    }

    /// `im2col_into` into a reused dirty scratch equals fresh `im2col`.
    #[test]
    fn im2col_into_matches_fresh(
        c in 1usize..3, h in 3usize..6, k in 1usize..3, seed in 0u64..200,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let dims = ConvDims { in_c: c, in_h: h, in_w: h, k, s: 1 };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(vec![c, h, h], 1.0, &mut rng);
        let mut scratch = Tensor::full(vec![3], 9.0);
        im2col_into(&x, dims, &mut scratch);
        prop_assert!(bits_eq(&scratch, &im2col(&x, dims)));
    }

    /// sum_rows equals per-column summation.
    #[test]
    fn sum_rows_is_column_sum(a in tensor(4, 3)) {
        let s = a.sum_rows();
        for col in 0..3 {
            let manual: f32 = (0..4).map(|r| a.at2(r, col)).sum();
            prop_assert!((s.data()[col] - manual).abs() < 1e-4);
        }
    }
}
