//! Property-based tests for the tensor substrate: linear-algebra laws and
//! the im2col/col2im adjoint relation on random geometries.

use naps_tensor::{col2im, im2col, max_pool2d, max_pool2d_backward, ConvDims, Tensor};
use proptest::prelude::*;

fn tensor(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, m * n)
        .prop_map(move |d| Tensor::from_vec(vec![m, n], d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B) C == A (B C) within f32 tolerance on small random matrices.
    #[test]
    fn matmul_is_associative(
        a in tensor(3, 2), b in tensor(2, 4), c in tensor(4, 2),
    ) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    /// Transpose is an involution and (AB)^T == B^T A^T.
    #[test]
    fn transpose_laws(a in tensor(3, 4), b in tensor(4, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Elementwise ops are pointwise and shape-preserving.
    #[test]
    fn elementwise_laws(a in tensor(2, 5), b in tensor(2, 5)) {
        let sum = a.add(&b);
        let diff = sum.sub(&b);
        for (x, y) in diff.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
        let prod = a.mul(&b);
        for ((p, x), y) in prod.data().iter().zip(a.data()).zip(b.data()) {
            prop_assert!((p - x * y).abs() < 1e-5);
        }
    }

    /// im2col/col2im satisfy the adjoint identity
    /// <im2col(x), g> == <x, col2im(g)> for random geometry and data.
    #[test]
    fn im2col_col2im_are_adjoint(
        c in 1usize..3,
        h in 3usize..6,
        k in 1usize..3,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let dims = ConvDims { in_c: c, in_h: h, in_w: h, k, s: 1 };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(vec![c, h, h], 1.0, &mut rng);
        let g = Tensor::randn(vec![dims.rows(), dims.cols()], 1.0, &mut rng);
        let px = im2col(&x, dims);
        let lhs: f32 = px.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&g, dims);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// Max pooling returns genuine per-window maxima and its backward
    /// routes all gradient mass (conservation).
    #[test]
    fn pooling_laws(seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(vec![2, 4, 4], 1.0, &mut rng);
        let (pooled, arg) = max_pool2d(&x, 2, 4, 4, 2);
        // Every pooled value is attained at its argmax position.
        for (o, &idx) in pooled.data().iter().zip(&arg) {
            prop_assert_eq!(*o, x.data()[idx]);
        }
        // Gradient conservation.
        let g = Tensor::ones(vec![2, 2, 2]);
        let back = max_pool2d_backward(&g, &arg, x.len());
        prop_assert!((back.sum() - g.sum()).abs() < 1e-5);
    }

    /// sum_rows equals per-column summation.
    #[test]
    fn sum_rows_is_column_sum(a in tensor(4, 3)) {
        let s = a.sum_rows();
        for col in 0..3 {
            let manual: f32 = (0..4).map(|r| a.at2(r, col)).sum();
            prop_assert!((s.data()[col] - manual).abs() < 1e-4);
        }
    }
}
