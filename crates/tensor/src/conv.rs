//! Convolution lowering (`im2col` / `col2im`) and max pooling.
//!
//! The paper's networks use 5×5 stride-1 convolutions and 2×2 max pooling
//! (Table I).  Convolution is lowered to a matrix product: each output
//! position becomes a row holding the flattened receptive field, so the
//! convolution is `patches @ kernel^T` — the standard im2col trick.

use crate::tensor::Tensor;

/// Geometry of one convolution: input `[in_c, in_h, in_w]`, square kernel
/// `k`, stride `s`, no padding (as in the paper's architectures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvDims {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel side length.
    pub k: usize,
    /// Stride.
    pub s: usize,
}

impl ConvDims {
    /// Output height.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.in_h - self.k) / self.s + 1
    }

    /// Output width.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.in_w - self.k) / self.s + 1
    }

    /// Rows of the lowered patch matrix (= output positions).
    #[inline]
    pub fn rows(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Columns of the lowered patch matrix (= receptive-field size).
    #[inline]
    pub fn cols(&self) -> usize {
        self.in_c * self.k * self.k
    }

    /// Validates that the kernel fits the input.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is larger than the input or the stride is zero.
    pub fn validate(&self) {
        assert!(self.s > 0, "stride must be positive");
        assert!(
            self.k <= self.in_h && self.k <= self.in_w,
            "kernel {k} exceeds input {h}x{w}",
            k = self.k,
            h = self.in_h,
            w = self.in_w
        );
    }
}

/// Lowers an input image `[in_c, in_h, in_w]` into a patch matrix
/// `[out_h*out_w, in_c*k*k]`.
///
/// # Panics
///
/// Panics if `input` does not have `dims.in_c * in_h * in_w` elements.
pub fn im2col(input: &Tensor, dims: ConvDims) -> Tensor {
    let mut out = Tensor::default();
    im2col_into(input, dims, &mut out);
    out
}

/// Like [`im2col`], but writes the patch matrix into the caller-provided
/// `out` scratch (resized in place; allocation-free after warm-up — the
/// treatment frozen-weight serving paths give their conv lowering).
///
/// # Panics
///
/// Panics if `input` does not have `dims.in_c * in_h * in_w` elements.
pub fn im2col_into(input: &Tensor, dims: ConvDims, out: &mut Tensor) {
    dims.validate();
    assert_eq!(
        input.len(),
        dims.in_c * dims.in_h * dims.in_w,
        "input size does not match conv dims"
    );
    let x = input.data();
    let (oh, ow) = (dims.out_h(), dims.out_w());
    let cols = dims.cols();
    // Every element below is overwritten, so the plain (retaining) resize
    // suffices.
    out.resize_in_place(&[dims.rows(), cols]);
    let o = out.data_mut();
    let hw = dims.in_h * dims.in_w;
    let mut row = 0;
    for oy in 0..oh {
        for ox in 0..ow {
            let base = row * cols;
            let mut col = 0;
            for c in 0..dims.in_c {
                for ky in 0..dims.k {
                    let iy = oy * dims.s + ky;
                    let src = c * hw + iy * dims.in_w + ox * dims.s;
                    o[base + col..base + col + dims.k].copy_from_slice(&x[src..src + dims.k]);
                    col += dims.k;
                }
            }
            row += 1;
        }
    }
}

/// Scatters a patch-matrix gradient `[out_h*out_w, in_c*k*k]` back onto the
/// input image `[in_c, in_h, in_w]` (the adjoint of [`im2col`]).
///
/// # Panics
///
/// Panics if `grad` does not have shape `[dims.rows(), dims.cols()]`.
pub fn col2im(grad: &Tensor, dims: ConvDims) -> Tensor {
    dims.validate();
    assert_eq!(
        grad.shape(),
        &[dims.rows(), dims.cols()],
        "gradient shape does not match conv dims"
    );
    let g = grad.data();
    let (oh, ow) = (dims.out_h(), dims.out_w());
    let cols = dims.cols();
    let hw = dims.in_h * dims.in_w;
    let mut out = vec![0.0f32; dims.in_c * hw];
    let mut row = 0;
    for oy in 0..oh {
        for ox in 0..ow {
            let base = row * cols;
            let mut col = 0;
            for c in 0..dims.in_c {
                for ky in 0..dims.k {
                    let iy = oy * dims.s + ky;
                    let dst = c * hw + iy * dims.in_w + ox * dims.s;
                    for kx in 0..dims.k {
                        out[dst + kx] += g[base + col + kx];
                    }
                    col += dims.k;
                }
            }
            row += 1;
        }
    }
    Tensor::from_vec(vec![dims.in_c, dims.in_h, dims.in_w], out)
}

/// 2×2-style max pooling over `[c, h, w]` with window `k` and stride `k`
/// (non-overlapping, as in the paper).  Returns the pooled tensor
/// `[c, h/k, w/k]` and the flat argmax index of each window for the
/// backward pass.
///
/// # Panics
///
/// Panics if `input` is not `[c,h,w]`-sized for the given `c`, or if `k`
/// is zero or larger than the spatial extent.
pub fn max_pool2d(input: &Tensor, c: usize, h: usize, w: usize, k: usize) -> (Tensor, Vec<usize>) {
    assert!(k > 0 && k <= h && k <= w, "invalid pooling window {k}");
    assert_eq!(input.len(), c * h * w, "input size does not match c*h*w");
    let x = input.data();
    let (oh, ow) = (h / k, w / k);
    let mut out = vec![0.0f32; c * oh * ow];
    let mut arg = vec![0usize; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = oy * k + ky;
                        let ix = ox * k + kx;
                        let idx = ch * h * w + iy * w + ix;
                        if x[idx] > best {
                            best = x[idx];
                            best_idx = idx;
                        }
                    }
                }
                let o = ch * oh * ow + oy * ow + ox;
                out[o] = best;
                arg[o] = best_idx;
            }
        }
    }
    (Tensor::from_vec(vec![c, oh, ow], out), arg)
}

/// Backward of [`max_pool2d`]: routes each output gradient to the input
/// position that won the max.
///
/// # Panics
///
/// Panics if `grad.len() != argmax.len()`.
pub fn max_pool2d_backward(grad: &Tensor, argmax: &[usize], input_len: usize) -> Tensor {
    assert_eq!(
        grad.len(),
        argmax.len(),
        "gradient and argmax lengths differ"
    );
    let mut out = vec![0.0f32; input_len];
    for (&g, &idx) in grad.data().iter().zip(argmax) {
        out[idx] += g;
    }
    Tensor::from_vec(vec![input_len], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_dims_geometry() {
        let d = ConvDims {
            in_c: 1,
            in_h: 28,
            in_w: 28,
            k: 5,
            s: 1,
        };
        assert_eq!(d.out_h(), 24);
        assert_eq!(d.out_w(), 24);
        assert_eq!(d.rows(), 576);
        assert_eq!(d.cols(), 25);
    }

    #[test]
    fn im2col_identity_kernel_geometry() {
        // 1x1 kernel: patch matrix is just the flattened image per position.
        let d = ConvDims {
            in_c: 1,
            in_h: 2,
            in_w: 2,
            k: 1,
            s: 1,
        };
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1., 2., 3., 4.]);
        let p = im2col(&x, d);
        assert_eq!(p.shape(), &[4, 1]);
        assert_eq!(p.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        let d = ConvDims {
            in_c: 1,
            in_h: 3,
            in_w: 3,
            k: 2,
            s: 1,
        };
        let x = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|i| i as f32).collect());
        let p = im2col(&x, d);
        assert_eq!(p.shape(), &[4, 4]);
        // Top-left patch: rows (1,2),(4,5)
        assert_eq!(p.row(0), &[1., 2., 4., 5.]);
        // Bottom-right patch: rows (5,6),(8,9)
        assert_eq!(p.row(3), &[5., 6., 8., 9.]);
    }

    #[test]
    fn im2col_multi_channel_concatenates_channels() {
        let d = ConvDims {
            in_c: 2,
            in_h: 2,
            in_w: 2,
            k: 2,
            s: 1,
        };
        let x = Tensor::from_vec(vec![2, 2, 2], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let p = im2col(&x, d);
        assert_eq!(p.shape(), &[1, 8]);
        assert_eq!(p.row(0), &[1., 2., 3., 4., 10., 20., 30., 40.]);
    }

    #[test]
    fn im2col_into_reuses_dirty_scratch() {
        let d = ConvDims {
            in_c: 1,
            in_h: 3,
            in_w: 3,
            k: 2,
            s: 1,
        };
        let x = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|i| i as f32).collect());
        let mut scratch = Tensor::full(vec![9, 9], 7.0);
        im2col_into(&x, d, &mut scratch);
        assert_eq!(scratch, im2col(&x, d));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), g> == <x, col2im(g)> for random-ish data.
        let d = ConvDims {
            in_c: 2,
            in_h: 4,
            in_w: 4,
            k: 3,
            s: 1,
        };
        let x = Tensor::from_vec(
            vec![2, 4, 4],
            (0..32).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let g = Tensor::from_vec(
            vec![d.rows(), d.cols()],
            (0..d.rows() * d.cols())
                .map(|i| (i as f32 * 0.13).cos())
                .collect(),
        );
        let px = im2col(&x, d);
        let lhs: f32 = px.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&g, d);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn max_pool_takes_window_maxima() {
        let x = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let (p, arg) = max_pool2d(&x, 1, 4, 4, 2);
        assert_eq!(p.shape(), &[1, 2, 2]);
        assert_eq!(p.data(), &[4., 8., 12., 16.]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1., 9., 3., 4.]);
        let (_, arg) = max_pool2d(&x, 1, 2, 2, 2);
        let g = Tensor::from_vec(vec![1, 1, 1], vec![2.5]);
        let back = max_pool2d_backward(&g, &arg, 4);
        assert_eq!(back.data(), &[0., 2.5, 0., 0.]);
    }

    #[test]
    fn pooling_multi_channel_is_per_channel() {
        let x = Tensor::from_vec(vec![2, 2, 2], vec![1., 2., 3., 4., 8., 7., 6., 5.]);
        let (p, _) = max_pool2d(&x, 2, 2, 2, 2);
        assert_eq!(p.data(), &[4., 8.]);
    }

    #[test]
    #[should_panic(expected = "invalid pooling window")]
    fn zero_window_panics() {
        let x = Tensor::zeros(vec![1, 2, 2]);
        let _ = max_pool2d(&x, 1, 2, 2, 0);
    }
}
