//! Random initialisation helpers: Gaussian sampling and Xavier/Glorot
//! uniform initialisation for layer weights.

use crate::tensor::Tensor;
use rand::Rng;

/// Extension trait adding Gaussian sampling to any [`rand::Rng`].
///
/// Implemented with the Box–Muller transform so the crate needs no
/// distribution dependency beyond `rand` itself.
pub trait Randn: Rng {
    /// One sample from `N(0, 1)`.
    fn randn(&mut self) -> f32 {
        // Box–Muller; clamp the uniform away from 0 to keep ln finite.
        let u1: f32 = self.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

impl<R: Rng + ?Sized> Randn for R {}

/// A tensor with entries drawn uniformly from the Xavier/Glorot range
/// `±sqrt(6 / (fan_in + fan_out))` — the initialisation that keeps layer
/// activations well-scaled so the paper's deep fc stacks train reliably.
pub fn xavier_uniform(
    shape: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let bound = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| rng.gen_range(-bound..bound)).collect();
    Tensor::from_vec(shape, data)
}

impl Tensor {
    /// A tensor with i.i.d. `N(0, std²)` entries.
    pub fn randn(shape: Vec<usize>, std: f32, rng: &mut impl Rng) -> Tensor {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.randn() * std).collect();
        Tensor::from_vec(shape, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.randn()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(vec![64, 32], 32, 64, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
        // Not degenerate.
        assert!(t.data().iter().any(|&x| x.abs() > bound * 0.5));
    }

    #[test]
    fn randn_tensor_is_seeded_deterministically() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let ta = Tensor::randn(vec![8], 2.0, &mut a);
        let tb = Tensor::randn(vec![8], 2.0, &mut b);
        assert_eq!(ta, tb);
    }
}
