//! 2-D linear algebra: matrix products (plain and transposed variants) and
//! transpose.  The transposed variants avoid materialising intermediate
//! transposes inside backpropagation.

use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product `self @ other` for 2-D tensors `[m,k] @ [k,n] -> [m,n]`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams both the output
    /// row and the right-hand row — the cache-friendly layout for row-major
    /// data.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul lhs");
        let (k2, n) = dims2(other, "matmul rhs");
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue; // ReLU outputs are often sparse
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix product with a transposed left operand:
    /// `self^T @ other` for `[k,m]^T @ [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        let (k, m) = dims2(self, "matmul_at lhs");
        let (k2, n) = dims2(other, "matmul_at rhs");
        assert_eq!(k, k2, "matmul_at shared dimensions differ: {k} vs {k2}");
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix product with a transposed right operand:
    /// `self @ other^T` for `[m,k] @ [n,k]^T -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul_bt lhs");
        let (n, k2) = dims2(other, "matmul_bt rhs");
        assert_eq!(k, k2, "matmul_bt shared dimensions differ: {k} vs {k2}");
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = dims2(self, "transpose");
        let a = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Sums a 2-D tensor over its rows, returning a `[cols]` tensor.
    ///
    /// Used to reduce per-sample bias gradients over a batch.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        let (m, n) = dims2(self, "sum_rows");
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        Tensor::from_vec(vec![n], out)
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 2, "{what} requires a 2-D tensor, got shape {s:?}");
    (s[0], s[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a23() -> Tensor {
        Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])
    }
    fn b32() -> Tensor {
        Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.])
    }

    #[test]
    fn matmul_known_product() {
        let c = a23().matmul(&b32());
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = a23(); // [2,3]
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|i| i as f32).collect());
        let viat = a.matmul_at(&x); // a^T [3,2] @ [2,4]
        let explicit = a.transpose().matmul(&x);
        assert_eq!(viat, explicit);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = a23(); // [2,3]
        let b = Tensor::from_vec(vec![4, 3], (0..12).map(|i| i as f32).collect());
        let viat = a.matmul_bt(&b); // [2,3] @ [4,3]^T
        let explicit = a.matmul(&b.transpose());
        assert_eq!(viat, explicit);
    }

    #[test]
    fn transpose_involution() {
        let a = a23();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn identity_is_neutral() {
        let a = a23();
        let eye = Tensor::from_vec(vec![3, 3], vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn sum_rows_reduces_batch() {
        let a = a23();
        let s = a.sum_rows();
        assert_eq!(s.shape(), &[3]);
        assert_eq!(s.data(), &[5., 7., 9.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let a = a23();
        let b = Tensor::zeros(vec![2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        // Sparsity fast-path must not change results.
        let a = Tensor::from_vec(vec![2, 3], vec![0., 2., 0., 4., 0., 6.]);
        let b = b32();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[18., 20., 94., 104.]);
    }
}
