//! 2-D linear algebra: matrix products (plain and transposed variants) and
//! transpose.  The transposed variants avoid materialising intermediate
//! transposes inside backpropagation.
//!
//! All three products run through one blocked [`gemm`] microkernel
//! (4-row register tiling over an i-k-j sweep), so `matmul`, `matmul_at`
//! and `matmul_bt` — and with them the im2col-lowered convolutions of
//! `naps-nn`, whose forward/backward products are exactly these calls —
//! share a single inner loop.

use crate::tensor::Tensor;

/// How many output rows the microkernel accumulates per sweep of `b`.
/// Four `f32` accumulator rows fit comfortably in registers and give 4×
/// reuse of every streamed `b` row.
const GEMM_MR: usize = 4;

/// Blocked row-major product microkernel: `out += a @ b` for
/// `[m,k] @ [k,n]`, with `out` pre-zeroed by the callers.
///
/// i-k-j order, [`GEMM_MR`] rows at a time: the four `a` values of column
/// `p` are broadcast from registers while the `b` row `p` streams once
/// through all four accumulator rows — the cache-friendly shape for
/// row-major data, and a 4× cut in `b` traffic over the row-at-a-time
/// loop.  A column whose four `a` values are all zero is skipped (ReLU
/// outputs are often sparse).
///
/// Per output element the terms still accumulate in ascending-`p` order
/// and zero `a` values contribute exactly `±0.0`, so on finite data the
/// results are bit-identical to the straightforward loops this kernel
/// replaced — trained fixtures and CI gates depend on exact `f32`
/// training trajectories.
fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut rows = out.chunks_exact_mut(n);
    let blocks = m / GEMM_MR;
    for blk in 0..blocks {
        let i = blk * GEMM_MR;
        let (o0, o1, o2, o3) = match (rows.next(), rows.next(), rows.next(), rows.next()) {
            (Some(o0), Some(o1), Some(o2), Some(o3)) => (o0, o1, o2, o3),
            _ => unreachable!("block rows within m"),
        };
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        for p in 0..k {
            let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
            if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (j, &bv) in brow.iter().enumerate() {
                o0[j] += v0 * bv;
                o1[j] += v1 * bv;
                o2[j] += v2 * bv;
                o3[j] += v3 * bv;
            }
        }
    }
    // Tail rows (m % GEMM_MR): the single-row kernel.
    for i in blocks * GEMM_MR..m {
        // naps-lint: allow(typed_errors, "rows yields exactly m output rows (chunks_exact over an m*n buffer) and this loop visits at most m of them")
        let orow = rows.next().expect("one output row per a row");
        let arow = &a[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

impl Tensor {
    /// Matrix product `self @ other` for 2-D tensors `[m,k] @ [k,n] -> [m,n]`,
    /// via the blocked [`gemm`] microkernel.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul lhs");
        let (k2, n) = dims2(other, "matmul rhs");
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm(m, k, n, self.data(), other.data(), &mut out);
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix product with a transposed left operand:
    /// `self^T @ other` for `[k,m]^T @ [k,n] -> [m,n]`.
    ///
    /// Packs `self^T` once (one transpose) and runs the same [`gemm`]
    /// microkernel; per output element the accumulation order is
    /// unchanged (ascending shared dimension), so results match the old
    /// dedicated loop bit-for-bit on finite data.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        let (k, m) = dims2(self, "matmul_at lhs");
        let (k2, n) = dims2(other, "matmul_at rhs");
        assert_eq!(k, k2, "matmul_at shared dimensions differ: {k} vs {k2}");
        let at = self.transpose();
        let mut out = vec![0.0f32; m * n];
        gemm(m, k, n, at.data(), other.data(), &mut out);
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix product with a transposed right operand:
    /// `self @ other^T` for `[m,k] @ [n,k]^T -> [m,n]`.
    ///
    /// Packs `other^T` once and runs the same [`gemm`] microkernel (the
    /// streamed `b` rows are then contiguous); per output element the
    /// accumulation order is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        let (m, k) = dims2(self, "matmul_bt lhs");
        let (n, k2) = dims2(other, "matmul_bt rhs");
        assert_eq!(k, k2, "matmul_bt shared dimensions differ: {k} vs {k2}");
        let bt = other.transpose();
        let mut out = vec![0.0f32; m * n];
        gemm(m, k, n, self.data(), bt.data(), &mut out);
        Tensor::from_vec(vec![m, n], out)
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = dims2(self, "transpose");
        let a = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Sums a 2-D tensor over its rows, returning a `[cols]` tensor.
    ///
    /// Used to reduce per-sample bias gradients over a batch.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        let (m, n) = dims2(self, "sum_rows");
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        Tensor::from_vec(vec![n], out)
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 2, "{what} requires a 2-D tensor, got shape {s:?}");
    (s[0], s[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a23() -> Tensor {
        Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])
    }
    fn b32() -> Tensor {
        Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.])
    }

    #[test]
    fn matmul_known_product() {
        let c = a23().matmul(&b32());
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = a23(); // [2,3]
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|i| i as f32).collect());
        let viat = a.matmul_at(&x); // a^T [3,2] @ [2,4]
        let explicit = a.transpose().matmul(&x);
        assert_eq!(viat, explicit);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = a23(); // [2,3]
        let b = Tensor::from_vec(vec![4, 3], (0..12).map(|i| i as f32).collect());
        let viat = a.matmul_bt(&b); // [2,3] @ [4,3]^T
        let explicit = a.matmul(&b.transpose());
        assert_eq!(viat, explicit);
    }

    #[test]
    fn transpose_involution() {
        let a = a23();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn identity_is_neutral() {
        let a = a23();
        let eye = Tensor::from_vec(vec![3, 3], vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn sum_rows_reduces_batch() {
        let a = a23();
        let s = a.sum_rows();
        assert_eq!(s.shape(), &[3]);
        assert_eq!(s.data(), &[5., 7., 9.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let a = a23();
        let b = Tensor::zeros(vec![2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        // Sparsity fast-path must not change results.
        let a = Tensor::from_vec(vec![2, 3], vec![0., 2., 0., 4., 0., 6.]);
        let b = b32();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[18., 20., 94., 104.]);
    }

    /// The blocked microkernel must agree bit-for-bit with a naive
    /// ascending-`p` triple loop — same accumulation order per output
    /// element — across row counts straddling the 4-row block boundary
    /// and with embedded zeros exercising the all-rows-zero skip.
    #[test]
    fn blocked_kernel_is_bit_identical_to_naive_loop() {
        for m in 1..=9usize {
            let (k, n) = (7usize, 5usize);
            let a = Tensor::from_vec(
                vec![m, k],
                (0..m * k)
                    .map(|i| {
                        if i % 5 == 0 {
                            0.0
                        } else {
                            ((i as f32) * 0.37).sin()
                        }
                    })
                    .collect(),
            );
            let b = Tensor::from_vec(
                vec![k, n],
                (0..k * n).map(|i| ((i as f32) * 0.61).cos()).collect(),
            );
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    for p in 0..k {
                        naive[i * n + j] += a.data()[i * k + p] * b.data()[p * n + j];
                    }
                }
            }
            let c = a.matmul(&b);
            let bits_equal = c
                .data()
                .iter()
                .zip(&naive)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal, "m={m}: blocked kernel diverged from naive loop");
            // The transposed variants reduce to the same kernel.
            assert_eq!(a.transpose().matmul_at(&b), c, "m={m} matmul_at");
            assert_eq!(a.matmul_bt(&b.transpose()), c, "m={m} matmul_bt");
        }
    }
}
