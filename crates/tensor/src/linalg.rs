//! 2-D linear algebra: matrix products (plain and transposed variants) and
//! transpose.  The transposed variants avoid materialising intermediate
//! transposes inside backpropagation.
//!
//! All three products run through one blocked [`gemm`] microkernel
//! (4-row register tiling over an i-k-j sweep), so `matmul`, `matmul_at`
//! and `matmul_bt` — and with them the im2col-lowered convolutions of
//! `naps-nn`, whose forward/backward products are exactly these calls —
//! share a single inner loop.

use crate::tensor::Tensor;

/// How many output rows the microkernel accumulates per sweep of `b`.
/// Four `f32` accumulator rows fit comfortably in registers and give 4×
/// reuse of every streamed `b` row.
const GEMM_MR: usize = 4;

/// Blocked row-major product microkernel: `out += a @ b` for
/// `[m,k] @ [k,n]`, with `out` pre-zeroed by the callers.
///
/// i-k-j order, [`GEMM_MR`] rows at a time: the four `a` values of column
/// `p` are broadcast from registers while the `b` row `p` streams once
/// through all four accumulator rows — the cache-friendly shape for
/// row-major data, and a 4× cut in `b` traffic over the row-at-a-time
/// loop.  A column whose four `a` values are all zero is skipped (ReLU
/// outputs are often sparse).
///
/// Per output element the terms still accumulate in ascending-`p` order
/// and zero `a` values contribute exactly `±0.0`, so on finite data the
/// results are bit-identical to the straightforward loops this kernel
/// replaced — trained fixtures and CI gates depend on exact `f32`
/// training trajectories.
fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut rows = out.chunks_exact_mut(n);
    let blocks = m / GEMM_MR;
    for blk in 0..blocks {
        let i = blk * GEMM_MR;
        let (o0, o1, o2, o3) = match (rows.next(), rows.next(), rows.next(), rows.next()) {
            (Some(o0), Some(o1), Some(o2), Some(o3)) => (o0, o1, o2, o3),
            _ => unreachable!("block rows within m"),
        };
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        for p in 0..k {
            let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
            if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (j, &bv) in brow.iter().enumerate() {
                o0[j] += v0 * bv;
                o1[j] += v1 * bv;
                o2[j] += v2 * bv;
                o3[j] += v3 * bv;
            }
        }
    }
    // Tail rows (m % GEMM_MR): the single-row kernel.
    for i in blocks * GEMM_MR..m {
        // naps-lint: allow(typed_errors, "rows yields exactly m output rows (chunks_exact over an m*n buffer) and this loop visits at most m of them")
        let orow = rows.next().expect("one output row per a row");
        let arow = &a[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

impl Tensor {
    /// Matrix product `self @ other` for 2-D tensors `[m,k] @ [k,n] -> [m,n]`,
    /// via the blocked [`gemm`] microkernel.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// Like [`Tensor::matmul`], but writes into the caller-provided `out`
    /// (resized in place; allocation-free once `out`'s capacity has
    /// reached its high-water mark).  Runs the same blocked [`gemm`]
    /// microkernel with the same per-element accumulation order, so the
    /// result is bit-identical to `matmul`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = dims2(self, "matmul lhs");
        let (k2, n) = dims2(other, "matmul rhs");
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        out.resize_zeroed(&[m, n]);
        gemm(m, k, n, self.data(), other.data(), out.data_mut());
    }

    /// Matrix product with a transposed left operand:
    /// `self^T @ other` for `[k,m]^T @ [k,n] -> [m,n]`.
    ///
    /// Packs `self^T` once (one transpose) and runs the same [`gemm`]
    /// microkernel; per output element the accumulation order is
    /// unchanged (ascending shared dimension), so results match the old
    /// dedicated loop bit-for-bit on finite data.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        let (mut pack, mut out) = (Tensor::default(), Tensor::default());
        self.matmul_at_into(other, &mut pack, &mut out);
        out
    }

    /// Like [`Tensor::matmul_at`], but packs `self^T` into the caller's
    /// `pack` scratch and writes the product into `out` — both resized in
    /// place, so repeated calls are allocation-free after warm-up.
    /// Bit-identical to `matmul_at`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_at_into(&self, other: &Tensor, pack: &mut Tensor, out: &mut Tensor) {
        let (k, m) = dims2(self, "matmul_at lhs");
        let (k2, n) = dims2(other, "matmul_at rhs");
        assert_eq!(k, k2, "matmul_at shared dimensions differ: {k} vs {k2}");
        self.transpose_into(pack);
        out.resize_zeroed(&[m, n]);
        gemm(m, k, n, pack.data(), other.data(), out.data_mut());
    }

    /// Matrix product with a transposed right operand:
    /// `self @ other^T` for `[m,k] @ [n,k]^T -> [m,n]`.
    ///
    /// Packs `other^T` once and runs the same [`gemm`] microkernel (the
    /// streamed `b` rows are then contiguous); per output element the
    /// accumulation order is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        let (mut pack, mut out) = (Tensor::default(), Tensor::default());
        self.matmul_bt_into(other, &mut pack, &mut out);
        out
    }

    /// Like [`Tensor::matmul_bt`], but packs `other^T` into the caller's
    /// `pack` scratch and writes the product into `out` — both resized in
    /// place, so repeated calls are allocation-free after warm-up.  (For
    /// weights frozen across many calls, pack once with
    /// [`PackedWeights::pack_transposed`] instead.)  Bit-identical to
    /// `matmul_bt`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_bt_into(&self, other: &Tensor, pack: &mut Tensor, out: &mut Tensor) {
        let (m, k) = dims2(self, "matmul_bt lhs");
        let (n, k2) = dims2(other, "matmul_bt rhs");
        assert_eq!(k, k2, "matmul_bt shared dimensions differ: {k} vs {k2}");
        other.transpose_into(pack);
        out.resize_zeroed(&[m, n]);
        gemm(m, k, n, self.data(), pack.data(), out.data_mut());
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::default();
        self.transpose_into(&mut out);
        out
    }

    /// Transpose of a 2-D tensor, written into the caller-provided `out`
    /// (resized in place; allocation-free after warm-up).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose_into(&self, out: &mut Tensor) {
        let (m, n) = dims2(self, "transpose");
        out.resize_in_place(&[n, m]);
        let a = self.data();
        let o = out.data_mut();
        for i in 0..m {
            for j in 0..n {
                o[j * m + i] = a[i * n + j];
            }
        }
    }

    /// Sums a 2-D tensor over its rows, returning a `[cols]` tensor.
    ///
    /// Used to reduce per-sample bias gradients over a batch.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        let (m, n) = dims2(self, "sum_rows");
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        Tensor::from_vec(vec![n], out)
    }
}

/// A weight matrix packed once into the panel layout [`gemm`] streams,
/// for repeated products against frozen weights.
///
/// Serving weights are frozen at publish/load time, yet `matmul_bt`
/// re-packs `other^T` on every call.  `PackedWeights` moves that work to
/// construction: [`PackedWeights::pack`] stores the `[k,n]` panel verbatim
/// for `x @ w` products, [`PackedWeights::pack_transposed`] stores `w^T`
/// once for `x @ w^T` products.  Both then run the same [`gemm`]
/// microkernel with the same per-element accumulation order as the
/// per-call paths, so results are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedWeights {
    /// The `[k, n]` right-hand panel exactly as `gemm` streams it.
    panel: Tensor,
}

impl PackedWeights {
    /// Packs `w` (`[k, n]`) for `x @ w` products.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 2-D.
    pub fn pack(w: &Tensor) -> Self {
        dims2(w, "pack");
        PackedWeights { panel: w.clone() }
    }

    /// Packs `w` (`[n, k]`) for `x @ w^T` products; the transpose happens
    /// exactly once, here.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not 2-D.
    pub fn pack_transposed(w: &Tensor) -> Self {
        dims2(w, "pack_transposed");
        PackedWeights {
            panel: w.transpose(),
        }
    }

    /// The shared (input) dimension `k` of the packed product.
    #[inline]
    pub fn in_features(&self) -> usize {
        self.panel.shape()[0]
    }

    /// The output dimension `n` of the packed product.
    #[inline]
    pub fn out_features(&self) -> usize {
        self.panel.shape()[1]
    }

    /// The packed `[k, n]` panel.
    #[inline]
    pub fn panel(&self) -> &Tensor {
        &self.panel
    }

    /// `x @ panel` written into `out` (resized in place; allocation-free
    /// after warm-up).  Bit-identical to `x.matmul(&w)` for a
    /// [`PackedWeights::pack`]-ed `w`, and to `x.matmul_bt(&w)` for a
    /// [`PackedWeights::pack_transposed`]-ed `w`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 2-D or its width differs from `in_features`.
    pub fn matmul_into(&self, x: &Tensor, out: &mut Tensor) {
        let (m, k) = dims2(x, "packed matmul lhs");
        assert_eq!(
            k,
            self.in_features(),
            "packed matmul inner dimensions differ: {k} vs {}",
            self.in_features()
        );
        let n = self.out_features();
        out.resize_zeroed(&[m, n]);
        gemm(m, k, n, x.data(), self.panel.data(), out.data_mut());
    }

    /// Allocating convenience form of [`PackedWeights::matmul_into`].
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_into(x, &mut out);
        out
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 2, "{what} requires a 2-D tensor, got shape {s:?}");
    (s[0], s[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a23() -> Tensor {
        Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])
    }
    fn b32() -> Tensor {
        Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.])
    }

    #[test]
    fn matmul_known_product() {
        let c = a23().matmul(&b32());
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = a23(); // [2,3]
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|i| i as f32).collect());
        let viat = a.matmul_at(&x); // a^T [3,2] @ [2,4]
        let explicit = a.transpose().matmul(&x);
        assert_eq!(viat, explicit);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = a23(); // [2,3]
        let b = Tensor::from_vec(vec![4, 3], (0..12).map(|i| i as f32).collect());
        let viat = a.matmul_bt(&b); // [2,3] @ [4,3]^T
        let explicit = a.matmul(&b.transpose());
        assert_eq!(viat, explicit);
    }

    #[test]
    fn transpose_involution() {
        let a = a23();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn identity_is_neutral() {
        let a = a23();
        let eye = Tensor::from_vec(vec![3, 3], vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn sum_rows_reduces_batch() {
        let a = a23();
        let s = a.sum_rows();
        assert_eq!(s.shape(), &[3]);
        assert_eq!(s.data(), &[5., 7., 9.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let a = a23();
        let b = Tensor::zeros(vec![2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        // Sparsity fast-path must not change results.
        let a = Tensor::from_vec(vec![2, 3], vec![0., 2., 0., 4., 0., 6.]);
        let b = b32();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[18., 20., 94., 104.]);
    }

    /// The blocked microkernel must agree bit-for-bit with a naive
    /// ascending-`p` triple loop — same accumulation order per output
    /// element — across row counts straddling the 4-row block boundary
    /// and with embedded zeros exercising the all-rows-zero skip.
    #[test]
    fn blocked_kernel_is_bit_identical_to_naive_loop() {
        for m in 1..=9usize {
            let (k, n) = (7usize, 5usize);
            let a = Tensor::from_vec(
                vec![m, k],
                (0..m * k)
                    .map(|i| {
                        if i % 5 == 0 {
                            0.0
                        } else {
                            ((i as f32) * 0.37).sin()
                        }
                    })
                    .collect(),
            );
            let b = Tensor::from_vec(
                vec![k, n],
                (0..k * n).map(|i| ((i as f32) * 0.61).cos()).collect(),
            );
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    for p in 0..k {
                        naive[i * n + j] += a.data()[i * k + p] * b.data()[p * n + j];
                    }
                }
            }
            let c = a.matmul(&b);
            let bits_equal = c
                .data()
                .iter()
                .zip(&naive)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal, "m={m}: blocked kernel diverged from naive loop");
            // The transposed variants reduce to the same kernel.
            assert_eq!(a.transpose().matmul_at(&b), c, "m={m} matmul_at");
            assert_eq!(a.matmul_bt(&b.transpose()), c, "m={m} matmul_bt");
            // The into/packed variants share the kernel and must match
            // bit-for-bit too, including when the scratch is reused dirty.
            let mut pack = Tensor::from_vec(vec![3], vec![9., 9., 9.]);
            let mut out = Tensor::from_vec(vec![3], vec![9., 9., 9.]);
            a.matmul_into(&b, &mut out);
            assert_bits_eq(&out, &c, "matmul_into");
            a.transpose().matmul_at_into(&b, &mut pack, &mut out);
            assert_bits_eq(&out, &c, "matmul_at_into");
            a.matmul_bt_into(&b.transpose(), &mut pack, &mut out);
            assert_bits_eq(&out, &c, "matmul_bt_into");
            PackedWeights::pack(&b).matmul_into(&a, &mut out);
            assert_bits_eq(&out, &c, "PackedWeights::pack");
            PackedWeights::pack_transposed(&b.transpose()).matmul_into(&a, &mut out);
            assert_bits_eq(&out, &c, "PackedWeights::pack_transposed");
        }
    }

    #[track_caller]
    fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str) {
        assert_eq!(got.shape(), want.shape(), "{what}: shape");
        let same = got
            .data()
            .iter()
            .zip(want.data())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{what}: diverged from the per-call kernel");
    }

    #[test]
    fn packed_weights_report_dimensions() {
        let w = b32(); // [3, 2]
        let p = PackedWeights::pack(&w);
        assert_eq!((p.in_features(), p.out_features()), (3, 2));
        assert_eq!(p.panel(), &w);
        let pt = PackedWeights::pack_transposed(&w); // packs [2, 3]
        assert_eq!((pt.in_features(), pt.out_features()), (2, 3));
        assert_eq!(
            pt.matmul(&Tensor::from_vec(vec![1, 2], vec![1., 0.]))
                .data(),
            &[7., 9., 11.]
        );
    }

    #[test]
    fn into_variants_resize_reused_scratch() {
        // A scratch that is too large must shrink, one that is too small
        // must grow — and the result must be untainted by old contents.
        let mut out = Tensor::zeros(vec![7, 7]);
        a23().matmul_into(&b32(), &mut out);
        assert_eq!(out.shape(), &[2, 2]);
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
        let mut t = Tensor::default();
        a23().transpose_into(&mut t);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t, a23().transpose());
    }

    #[test]
    #[should_panic(expected = "packed matmul inner dimensions")]
    fn packed_matmul_rejects_width_mismatch() {
        let p = PackedWeights::pack(&b32());
        let _ = p.matmul(&Tensor::zeros(vec![1, 2]));
    }
}
