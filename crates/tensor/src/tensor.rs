//! The dense row-major tensor type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, `f32` n-dimensional array.
///
/// Shapes are dynamic (a `Vec<usize>`); all data lives in one contiguous
/// buffer.  Operations validate shapes and panic with a descriptive message
/// on mismatch — shape errors are programming errors in model wiring, not
/// recoverable runtime conditions.
#[derive(Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{}, {}, ..])", self.data[0], self.data[1])
        }
    }
}

impl Tensor {
    /// Creates a tensor from a shape and a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the product of `shape` does not equal `data.len()`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} implies {numel} elements but buffer has {}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: Vec<usize>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; numel],
        }
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "cannot reshape {} elements into {shape:?}",
            self.data.len()
        );
        self.shape = shape;
        self
    }

    /// Element at a 2-D index `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 requires a 2-D tensor");
        self.data[r * self.shape[1] + c]
    }

    /// Sets the element at a 2-D index `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        assert_eq!(self.shape.len(), 2, "set2 requires a 2-D tensor");
        self.data[r * self.shape[1] + c] = v;
    }

    /// Borrow of row `r` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row requires a 2-D tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map requires equal shapes ({:?} vs {:?})",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign requires equal shapes ({:?} vs {:?})",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Reshapes this tensor in place to `shape`, reusing the existing
    /// buffer capacity.  Element values are retained up to the new element
    /// count; newly exposed elements are `0.0`.  Intended for scratch
    /// buffers on allocation-free hot paths: once capacity has reached its
    /// high-water mark, no allocation occurs.
    pub fn resize_in_place(&mut self, shape: &[usize]) {
        let numel: usize = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(numel, 0.0);
    }

    /// Reshapes in place like [`Tensor::resize_in_place`] and fills the
    /// buffer with `0.0` — the precondition of the GEMM `*_into` kernels,
    /// which accumulate into their output.
    pub fn resize_zeroed(&mut self, shape: &[usize]) {
        self.resize_in_place(shape);
        self.data.fill(0.0);
    }

    /// Makes this tensor an exact copy of `src` (shape and data), reusing
    /// the existing buffer capacity.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Index of the maximum element of a 1-D tensor (ties break low).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of an empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects into a 1-D tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_element_count() {
        let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.shape(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "implies")]
    fn from_vec_rejects_bad_count() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1., 2., 3.]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(vec![3]).sum(), 0.0);
        assert_eq!(Tensor::ones(vec![3]).sum(), 3.0);
        assert_eq!(Tensor::full(vec![2], 2.5).sum(), 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshape(vec![3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn at2_and_row_are_row_major() {
        let t = Tensor::from_vec(vec![2, 3], vec![0., 1., 2., 10., 11., 12.]);
        assert_eq!(t.at2(1, 2), 12.0);
        assert_eq!(t.row(1), &[10., 11., 12.]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(vec![3], vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(vec![2]);
        let b = Tensor::zeros(vec![3]);
        let _ = a.add(&b);
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Tensor::from_vec(vec![2], vec![1., 2.]);
        let b = Tensor::from_vec(vec![2], vec![10., 20.]);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.data(), &[5.5, 11.0]);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        let t = Tensor::from_vec(vec![4], vec![1., 3., 3., 0.]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn resize_in_place_retains_then_zero_fills() {
        let mut t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        t.resize_in_place(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 2., 3., 4., 0., 0.]);
        t.resize_in_place(&[2]);
        assert_eq!(t.data(), &[1., 2.]);
    }

    #[test]
    fn resize_zeroed_clears_every_element() {
        let mut t = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        t.resize_zeroed(&[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[0., 0., 0., 0.]);
    }

    #[test]
    fn copy_from_matches_source_exactly() {
        let src = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect());
        let mut dst = Tensor::zeros(vec![10]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Tensor::zeros(vec![0]).mean(), 0.0);
    }

    #[test]
    fn collect_into_tensor() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.sum(), 6.0);
    }

    #[test]
    fn debug_is_nonempty_and_compact() {
        let t = Tensor::zeros(vec![100]);
        let s = format!("{t:?}");
        assert!(s.contains("shape"));
        assert!(s.len() < 100);
    }
}
