//! Minimal dense `f32` tensor library backing the `naps` neural-network
//! substrate.
//!
//! The paper trains and runs convolutional ReLU classifiers (PyTorch in the
//! original); this crate provides exactly the numeric kernels those models
//! need on a CPU: n-dimensional row-major arrays, 2-D matrix products
//! (including transposed variants used by backpropagation), `im2col`/
//! `col2im` lowering for convolutions, and max-pooling with argmax capture.
//!
//! # Example
//!
//! ```
//! use naps_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data()[0], 58.0); // 1*7 + 2*9 + 3*11
//! ```

mod conv;
mod linalg;
mod rng;
mod tensor;

pub use conv::{col2im, im2col, im2col_into, max_pool2d, max_pool2d_backward, ConvDims};
pub use linalg::PackedWeights;
pub use rng::{xavier_uniform, Randn};
pub use tensor::Tensor;
