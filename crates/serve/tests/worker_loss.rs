//! Regression suite for the engine's worker-death and shutdown-drain
//! error paths (ISSUE 7 satellites): a dead worker must surface as the
//! typed [`SubmitError::WorkerLost`] — on the in-flight ticket, on every
//! request still queued behind it, and on later submissions to a failed
//! engine — and an orderly shutdown must answer every accepted request.
//! Nothing on this surface may panic or hang.

mod common;

use naps_core::MonitorBuilder;
use naps_nn::{Dense, Layer, Relu, Sequential};
use naps_serve::{EngineConfig, FrozenMonitor, MonitorEngine, SubmitError};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// An identity layer that panics when any input feature is NaN — the
/// deliberate worker-killer.  Because the model's first layer is not a
/// recognisable MLP head, the engine cannot derive an input width and
/// skips submission validation, so the poison reaches the worker thread
/// (exactly the "model replica panics mid-batch" failure mode the typed
/// error exists for).
#[derive(Debug)]
struct PanicOnNan {
    features: usize,
}

impl Layer for PanicOnNan {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert!(
            !x.data().iter().any(|v| v.is_nan()),
            "poison input reached the model"
        );
        x.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn output_len(&self) -> usize {
        self.features
    }

    fn label(&self) -> String {
        "panic-on-nan".to_owned()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

const CLASSES: usize = 3;

/// `[PanicOnNan, Dense(2→12), ReLU, Dense(12→CLASSES)]` with seeded
/// weights, so every replica is an exact copy.
fn poison_model() -> Sequential {
    let mut rng = StdRng::seed_from_u64(9);
    Sequential::new(vec![
        Box::new(PanicOnNan { features: 2 }),
        Box::new(Dense::new(2, 12, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(12, CLASSES, &mut rng)),
    ])
}

fn clean_inputs(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            let a = i as f32 * 0.61;
            Tensor::from_vec(vec![2], vec![a.cos(), a.sin()])
        })
        .collect()
}

fn poison_input() -> Tensor {
    Tensor::from_vec(vec![2], vec![f32::NAN, 0.0])
}

/// An engine over the poison model: untrained (verdict quality is
/// irrelevant here), monitored at the ReLU (layer 2).
fn poison_engine(workers: usize, max_batch: usize, queue_capacity: usize) -> MonitorEngine {
    let mut net = poison_model();
    let xs = clean_inputs(24);
    let ys: Vec<usize> = (0..24).map(|i| i % CLASSES).collect();
    let monitor = MonitorBuilder::new(2, 1).build(&mut net, &xs, &ys, CLASSES);
    let frozen = FrozenMonitor::shard_by_class(&monitor, workers);
    let replicas = (0..workers).map(|_| poison_model()).collect();
    MonitorEngine::with_replicas(
        frozen,
        replicas,
        EngineConfig {
            workers,
            max_batch,
            queue_capacity,
        },
    )
    .expect("engine over caller-made replicas")
}

/// Retries `f` for up to two seconds — the worker-death guard runs
/// asynchronously on the dying thread, so flag-dependent assertions poll
/// instead of racing it.
fn eventually<F: FnMut() -> bool>(mut f: F, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if f() {
            return;
        }
        // naps-lint: allow(test_flakiness, "5ms pacing inside a 2s deadline poll; the deadline, not the sleep, is the synchronization point")
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn killed_worker_resolves_ticket_with_worker_lost() {
    let engine = poison_engine(1, 1, 64);
    // A clean request round-trips first: the engine works.
    let ok = engine
        .submit(clean_inputs(1)[0].clone())
        .expect("submit")
        .wait()
        .expect("clean request is answered");
    assert!(ok.report.predicted < CLASSES);

    // The poison kills the lone worker mid-batch: the in-flight ticket
    // resolves with the typed error — no panic, no hang.
    let ticket = engine.submit(poison_input()).expect("submit");
    assert_eq!(ticket.wait(), Err(SubmitError::WorkerLost));

    // Once the guard has marked the engine failed, submissions are
    // rejected with the same typed error (never queued forever).
    eventually(
        || {
            matches!(
                engine.submit(clean_inputs(1)[0].clone()),
                Err(SubmitError::WorkerLost)
            )
        },
        "failed engine rejects new submissions with WorkerLost",
    );
    // The synchronous wrappers see it too.
    assert_eq!(
        engine.check(&clean_inputs(1)[0]).unwrap_err(),
        SubmitError::WorkerLost
    );
    assert_eq!(
        engine.check_batch(&clean_inputs(2)).unwrap_err(),
        SubmitError::WorkerLost
    );
}

#[test]
fn try_wait_reports_worker_lost_instead_of_not_ready() {
    let engine = poison_engine(1, 1, 64);
    let ticket = engine.submit(poison_input()).expect("submit");
    eventually(
        || matches!(ticket.try_wait(), Err(SubmitError::WorkerLost)),
        "try_wait surfaces the dead worker",
    );
}

#[test]
fn requests_queued_behind_the_poison_never_hang() {
    // One worker, micro-batches of one: the poison is judged alone, and
    // everything queued behind it is orphaned by the worker's death.
    let engine = poison_engine(1, 1, 256);
    let poison_ticket = engine.submit(poison_input()).expect("submit");
    let mut tickets = Vec::new();
    for x in clean_inputs(20) {
        match engine.submit(x) {
            // Accepted: must resolve (with WorkerLost once the worker is
            // gone — the guard drains the orphaned queue).
            Ok(t) => tickets.push(t),
            // The guard already failed the engine: equally fine.
            Err(SubmitError::WorkerLost) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(poison_ticket.wait(), Err(SubmitError::WorkerLost));
    for t in tickets {
        // The deadline is the test harness's own timeout: wait() must
        // return (Err), not block forever on a hung ticket.
        assert_eq!(t.wait(), Err(SubmitError::WorkerLost));
    }
}

#[test]
fn surviving_workers_keep_a_degraded_engine_serving() {
    let engine = poison_engine(2, 1, 256);
    let xs = clean_inputs(8);
    let reference: Vec<_> = xs
        .iter()
        .map(|x| engine.check(x).expect("healthy engine").report)
        .collect();

    // Kill one of the two workers.
    let ticket = engine.submit(poison_input()).expect("submit");
    assert_eq!(ticket.wait(), Err(SubmitError::WorkerLost));

    // The survivor steals the dead worker's share: every clean request
    // is still answered, bit-identically to the healthy engine.
    for (x, want) in xs.iter().zip(&reference) {
        let got = engine.check(x).expect("degraded engine still serves");
        assert_eq!(&got.report, want);
    }
}

#[test]
fn shutdown_with_backlog_answers_every_accepted_request() {
    // Satellite check: `shutdown` documents that queued requests are
    // drained — verify it with a backlog that outnumbers the workers.
    let (monitor, net, probes) = common::fixture(23, 8);
    let engine = MonitorEngine::new(
        &monitor,
        &net,
        EngineConfig {
            workers: 2,
            max_batch: 4,
            queue_capacity: 1024,
        },
    )
    .expect("engine");
    let tickets: Vec<_> = probes
        .iter()
        .cycle()
        .take(96)
        .map(|x| engine.submit(x.clone()).expect("submit"))
        .collect();
    engine.stop(); // queues still hold a backlog
    let mut answered = 0u64;
    for t in tickets {
        t.wait().expect("accepted-before-stop request is judged");
        answered += 1;
    }
    let stats = engine.shutdown();
    assert_eq!(answered, 96);
    assert_eq!(stats.processed, 96);
}
