//! Concurrency smoke tests for [`MonitorEngine`]: many threads submitting
//! overlapping batches must produce verdicts **bit-identical** to
//! sequential checking, no matter how requests interleave, batch, or get
//! stolen between workers.
//!
//! Run these under `cargo test --release -p naps-serve` too (CI does):
//! release reordering and the absence of debug asserts surface timing
//! windows that debug builds hide.

use naps_core::{ActivationMonitor, BddZone, Monitor, MonitorReport};
use naps_nn::Sequential;
use naps_serve::{EngineConfig, MonitorEngine, SubmitError};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

mod common;

/// The shared serve fixture with this suite's probe count.
fn fixture(seed: u64) -> (Monitor<BddZone>, Sequential, Vec<Tensor>) {
    common::fixture(seed, 120)
}

fn sequential_reports(
    monitor: &Monitor<BddZone>,
    model: &mut Sequential,
    probes: &[Tensor],
) -> Vec<MonitorReport> {
    probes.iter().map(|x| monitor.check(model, x)).collect()
}

/// Serves `probes` through the engine and strips the epoch stamps, for
/// comparison against a sequential oracle.
fn served(engine: &MonitorEngine, probes: &[Tensor]) -> Vec<MonitorReport> {
    engine
        .check_batch(probes)
        .expect("engine is up")
        .into_iter()
        .map(|r| r.report)
        .collect()
}

#[test]
fn engine_verdicts_are_bit_identical_to_sequential() {
    let (monitor, mut net, probes) = fixture(7);
    let want = sequential_reports(&monitor, &mut net, &probes);
    for workers in [1, 2, 4] {
        for max_batch in [1, 16, 128] {
            let engine = MonitorEngine::new(
                &monitor,
                &net,
                EngineConfig {
                    workers,
                    max_batch,
                    queue_capacity: 64,
                },
            )
            .expect("engine");
            let got = served(&engine, &probes);
            assert_eq!(
                got, want,
                "divergence at workers={workers} max_batch={max_batch}"
            );
            let stats = engine.shutdown();
            assert_eq!(stats.processed, probes.len() as u64);
            assert!(stats.batches > 0);
        }
    }
}

#[test]
fn overlapping_submissions_from_many_threads_match_sequential() {
    let (monitor, mut net, probes) = fixture(8);
    let want = Arc::new(sequential_reports(&monitor, &mut net, &probes));
    let engine = Arc::new(
        MonitorEngine::new(
            &monitor,
            &net,
            EngineConfig {
                workers: 4,
                max_batch: 8,
                queue_capacity: 32,
            },
        )
        .expect("engine"),
    );
    let probes = Arc::new(probes);

    // 6 submitter threads, each hammering an overlapping slice of the
    // workload in its own order, twice over.
    let mut handles = Vec::new();
    for t in 0..6usize {
        let engine = Arc::clone(&engine);
        let probes = Arc::clone(&probes);
        let want = Arc::clone(&want);
        handles.push(std::thread::spawn(move || {
            let n = probes.len();
            let start = t * n / 6;
            for round in 0..2 {
                // A different overlapping window each round.
                let indices: Vec<usize> = (0..(2 * n / 3))
                    .map(|k| (start + k * (t + round + 1)) % n)
                    .collect();
                let tickets: Vec<_> = indices
                    .iter()
                    .map(|&i| (i, engine.submit(probes[i].clone()).expect("submit")))
                    .collect();
                for (i, ticket) in tickets {
                    let got = ticket.wait().expect("worker alive");
                    assert_eq!(got.report, want[i], "thread {t} round {round} probe {i}");
                    assert_eq!(got.epoch, 0, "nothing was republished");
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("submitter thread panicked");
    }
    let stats = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("all submitters joined"))
        .shutdown();
    assert!(stats.processed > 0);
}

#[test]
fn callback_submissions_deliver_every_verdict() {
    let (monitor, mut net, probes) = fixture(9);
    let want = sequential_reports(&monitor, &mut net, &probes);
    let engine = MonitorEngine::new(
        &monitor,
        &net,
        EngineConfig {
            workers: 2,
            max_batch: 4,
            queue_capacity: 16,
        },
    )
    .expect("engine");
    let (tx, rx) = std::sync::mpsc::channel();
    for (i, x) in probes.iter().enumerate() {
        let tx = tx.clone();
        engine
            .submit_with(x.clone(), move |report| {
                let _ = tx.send((i, report.report));
            })
            .expect("submit_with");
    }
    drop(tx);
    let mut got: Vec<Option<MonitorReport>> = vec![None; probes.len()];
    for (i, report) in rx {
        assert!(got[i].is_none(), "verdict {i} delivered twice");
        got[i] = Some(report);
    }
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.as_ref(), Some(w), "probe {i}");
    }
    engine.shutdown();
}

#[test]
fn wrong_width_inputs_are_rejected_at_submission() {
    // A malformed request must bounce at submit time — never reach a
    // worker, panic it mid-batch and take co-batched requests down.
    let (monitor, net, probes) = fixture(15);
    let engine = MonitorEngine::new(&monitor, &net, EngineConfig::default()).expect("engine");
    let bad = Tensor::from_vec(vec![3], vec![0.0, 1.0, 2.0]);
    assert_eq!(
        engine.submit(bad.clone()).err(),
        Some(SubmitError::WidthMismatch {
            expected: 2,
            actual: 3
        })
    );
    assert!(engine.try_submit(bad.clone()).is_err());
    assert!(engine.submit_with(bad, |_| {}).is_err());
    // The pool is unharmed: valid traffic still serves on all workers.
    let mut net = net;
    let want: Vec<_> = probes.iter().map(|x| monitor.check(&mut net, x)).collect();
    assert_eq!(served(&engine, &probes), want);
    let stats = engine.shutdown();
    assert_eq!(stats.processed, probes.len() as u64);
}

#[test]
fn backpressure_saturates_then_drains() {
    let (monitor, net, probes) = fixture(10);
    let engine = MonitorEngine::new(
        &monitor,
        &net,
        EngineConfig {
            workers: 1,
            max_batch: 4,
            queue_capacity: 2,
        },
    )
    .expect("engine");
    // Flood with non-blocking submissions: some must bounce with
    // Saturated (capacity 2), none may be lost or answered twice.
    let mut tickets = Vec::new();
    let mut saturated = 0usize;
    for x in probes.iter().cycle().take(400) {
        match engine.try_submit(x.clone()) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Saturated) => saturated += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let accepted = tickets.len();
    for t in tickets {
        t.wait().expect("accepted requests are answered");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.processed, accepted as u64);
    assert!(
        saturated > 0,
        "queue of capacity 2 never saturated under a 400-request flood"
    );
}

#[test]
fn shutdown_rejects_new_work_but_serves_queued_work() {
    let (monitor, net, probes) = fixture(11);
    let engine = MonitorEngine::new(&monitor, &net, EngineConfig::default()).expect("engine");
    let tickets: Vec<_> = probes
        .iter()
        .take(32)
        .map(|x| engine.submit(x.clone()).expect("submit"))
        .collect();
    let stats = engine.shutdown();
    assert_eq!(stats.processed, 32);
    for t in tickets {
        t.wait().expect("every queued request was answered");
    }
}

#[test]
fn work_stealing_kicks_in_under_skewed_load() {
    // One submitter, several workers: round-robin spreads requests, but
    // with max_batch 1 and a fast model, idle workers steal from loaded
    // queues. We can't force a schedule, so just assert the counter is
    // wired and the verdicts stay right under a load that admits stealing.
    let (monitor, mut net, probes) = fixture(12);
    let want = sequential_reports(&monitor, &mut net, &probes);
    let engine = MonitorEngine::new(
        &monitor,
        &net,
        EngineConfig {
            workers: 4,
            max_batch: 2,
            queue_capacity: 512,
        },
    )
    .expect("engine");
    for _ in 0..3 {
        let got = served(&engine, &probes);
        assert_eq!(got, want);
    }
    let stats = engine.shutdown();
    assert_eq!(stats.processed, 3 * probes.len() as u64);
    assert!(stats.largest_batch <= 2);
}

#[test]
fn deterministic_across_runs_and_rngs() {
    // Two engines over independently-restored replicas of the same model
    // agree with each other and with sequential checking: replication is
    // exact, not approximate.
    let (monitor, net, probes) = fixture(13);
    let a = MonitorEngine::new(&monitor, &net, EngineConfig::default()).expect("engine a");
    let b = MonitorEngine::new(
        &monitor,
        &net,
        EngineConfig {
            workers: 3,
            max_batch: 64,
            queue_capacity: 128,
        },
    )
    .expect("engine b");
    assert_eq!(
        a.check_batch(&probes).expect("a is up"),
        b.check_batch(&probes).expect("b is up")
    );
    a.shutdown();
    b.shutdown();
}

#[test]
fn random_interleaving_fuzz() {
    // A light fuzz: random interleavings of sync tickets and callbacks
    // from two threads, verified against the sequential oracle.
    let (monitor, mut net, probes) = fixture(14);
    let want = Arc::new(sequential_reports(&monitor, &mut net, &probes));
    let engine = Arc::new(
        MonitorEngine::new(
            &monitor,
            &net,
            EngineConfig {
                workers: 2,
                max_batch: 8,
                queue_capacity: 8,
            },
        )
        .expect("engine"),
    );
    let probes = Arc::new(probes);
    let mut handles = Vec::new();
    for t in 0..2u64 {
        let engine = Arc::clone(&engine);
        let probes = Arc::clone(&probes);
        let want = Arc::clone(&want);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t);
            let (tx, rx) = std::sync::mpsc::channel();
            let mut expected = 0usize;
            for _ in 0..150 {
                let i = rng.gen_range(0..probes.len());
                if rng.gen::<bool>() {
                    let got = engine
                        .submit(probes[i].clone())
                        .expect("submit")
                        .wait()
                        .expect("worker alive");
                    assert_eq!(got.report, want[i]);
                } else {
                    let tx = tx.clone();
                    let want = Arc::clone(&want);
                    engine
                        .submit_with(probes[i].clone(), move |r| {
                            assert_eq!(r.report, want[i]);
                            let _ = tx.send(());
                        })
                        .expect("submit_with");
                    expected += 1;
                }
            }
            drop(tx);
            assert_eq!(rx.iter().count(), expected, "callbacks lost");
        }));
    }
    for h in handles {
        h.join().expect("fuzz thread panicked");
    }
}

#[test]
fn submitting_to_a_stopped_engine_errors_instead_of_panicking() {
    // Satellite of ISSUE 3: submit/check/check_batch on a shut-down
    // engine must be a first-class error — never a panic, never a
    // deadlock, and never silently dropped queued work.
    let (monitor, net, probes) = fixture(16);
    let engine = MonitorEngine::new(&monitor, &net, EngineConfig::default()).expect("engine");

    // Work queued before the stop is still answered...
    let tickets: Vec<_> = probes
        .iter()
        .take(16)
        .map(|x| engine.submit(x.clone()).expect("submit"))
        .collect();
    engine.stop();
    for t in tickets {
        t.wait().expect("queued work drained after stop");
    }
    // ...and every submission path afterwards reports ShutDown.
    assert_eq!(
        engine.submit(probes[0].clone()).err(),
        Some(SubmitError::ShutDown)
    );
    assert_eq!(
        engine.try_submit(probes[0].clone()).err(),
        Some(SubmitError::ShutDown)
    );
    assert_eq!(
        engine.submit_with(probes[0].clone(), |_| {}).err(),
        Some(SubmitError::ShutDown)
    );
    assert_eq!(engine.check(&probes[0]).err(), Some(SubmitError::ShutDown));
    assert_eq!(
        engine.check_batch(&probes).err(),
        Some(SubmitError::ShutDown)
    );
    // stop() is idempotent and shutdown() still joins cleanly.
    engine.stop();
    let stats = engine.shutdown();
    assert_eq!(stats.processed, 16);
}

#[test]
fn blocked_submitters_are_released_by_stop() {
    // A submitter blocked on a full queue must be woken by a concurrent
    // stop() and handed ShutDown — not left waiting forever.
    let (monitor, net, probes) = fixture(17);
    let engine = Arc::new(
        MonitorEngine::with_replicas(
            naps_serve::FrozenMonitor::freeze(&monitor),
            vec![naps_nn::ModelSnapshot::capture(&net)
                .expect("mlp")
                .restore()],
            EngineConfig {
                workers: 1,
                max_batch: 1,
                queue_capacity: 1,
            },
        )
        .expect("engine"),
    );
    let flooder = {
        let engine = Arc::clone(&engine);
        let probes = probes.clone();
        std::thread::spawn(move || {
            // Tickets are dropped unwaited: the queue stays full, so
            // most submissions genuinely block on the space condvar.
            // The flood is unbounded — it can only end by observing
            // ShutDown, so termination *is* the wake-up property under
            // test (a stop() that fails to wake a blocked submitter
            // hangs the join below).
            for x in probes.iter().cycle() {
                match engine.submit(x.clone()) {
                    Ok(_ticket) => {}
                    Err(SubmitError::ShutDown) => return 1usize,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            unreachable!("cycle() never ends")
        })
    };
    // The flood is established once a verdict has flowed and the
    // one-slot queue is full again — from there the flooder is blocking
    // (or about to block) on the space condvar.  Deadline-polled; the
    // property under test holds for current *and* future submitters
    // either way.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !(engine.stats().processed > 0 && engine.queue_depth() == 1) {
        assert!(
            std::time::Instant::now() < deadline,
            "flood never established"
        );
        std::thread::yield_now();
    }
    engine.stop();
    let shutdowns = flooder.join().expect("flooder must terminate");
    assert_eq!(shutdowns, 1, "flooder ended without observing ShutDown");
    let stats = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("flooder joined"))
        .shutdown();
    assert!(stats.processed > 0);
}
