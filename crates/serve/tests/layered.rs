//! Acceptance tests for multi-layer serving: the layered engine must be
//! **bit-identical** to sequential [`LayeredMonitor`] checking (binary
//! and graded, per stamped epoch, across hot swaps), a single wrapped
//! monitor must behave exactly like the bare monitor (the `N = 1`
//! special case, pinned by a property suite over random inputs, gammas
//! and hot swaps), the versioned persistence container must round-trip
//! and still load pre-layered files (golden fixture), and corrupt bytes
//! must surface as [`PersistError`]s, never panics.

mod common;

use common::{fixture, layered_fixture, CLASSES};
use naps_core::{
    ActivationMonitor, BddZone, CombinePolicy, DriftConfig, GradedQuery, LayeredMonitor, Monitor,
    MonitorBuilder, NeuronSelection, Pattern, Verdict,
};
use naps_serve::{
    EngineConfig, EngineError, FrozenLayeredMonitor, FrozenMonitor, MonitorEngine, PersistError,
};
use naps_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn layered_engine(
    layered: &LayeredMonitor<BddZone>,
    model: &naps_nn::Sequential,
    workers: usize,
) -> MonitorEngine {
    MonitorEngine::new_layered(
        layered,
        model,
        EngineConfig {
            workers,
            max_batch: 8,
            queue_capacity: 512,
        },
    )
    .expect("MLP replicates")
}

#[test]
fn layered_engine_matches_sequential_layered_checking() {
    for policy in [
        CombinePolicy::Any,
        CombinePolicy::All,
        CombinePolicy::Majority,
    ] {
        let (layered, mut model, probes) = layered_fixture(19, 40, policy);
        let engine = layered_engine(&layered, &model, 3);
        let sequential = layered.check_batch(&mut model, &probes);
        let served = engine.check_layered_batch(&probes).expect("engine up");
        assert_eq!(served.len(), sequential.len());
        for (i, (s, want)) in served.iter().zip(&sequential).enumerate() {
            assert_eq!(s.epoch, 0);
            assert_eq!(s.predicted, want.predicted, "probe {i} ({policy:?})");
            assert_eq!(s.combined, want.combined, "probe {i} ({policy:?})");
            let verdicts: Vec<Verdict> = s.per_layer.iter().map(|r| r.verdict).collect();
            assert_eq!(verdicts, want.per_layer, "probe {i} ({policy:?})");
            assert!(s.graded.is_none(), "binary submission");
        }
        engine.shutdown();
    }
}

#[test]
fn layered_graded_matches_sequential() {
    let (layered, mut model, probes) = layered_fixture(23, 30, CombinePolicy::Majority);
    let engine = layered_engine(&layered, &model, 2);
    for budget in [0u32, 2] {
        let query = GradedQuery::new(budget, 2);
        let sequential = layered.check_graded_batch(&mut model, &probes, query);
        let served = engine
            .check_layered_graded_batch(&probes, query)
            .expect("engine up");
        for (i, (s, want)) in served.iter().zip(&sequential).enumerate() {
            assert_eq!(s.predicted, want.predicted, "probe {i}");
            assert_eq!(s.combined, want.combined, "probe {i}");
            let graded = s.graded.as_ref().expect("graded submission");
            assert_eq!(graded, &want.per_layer, "probe {i} budget {budget}");
            // The binary per-layer column embeds the graded reports'.
            for (b, g) in s.per_layer.iter().zip(graded) {
                assert_eq!(b, &g.report);
            }
        }
    }
    engine.shutdown();
}

#[test]
fn single_layer_engine_is_the_n1_special_case() {
    let (monitor, mut model, probes) = fixture(31, 40);
    let engine = MonitorEngine::new(
        &monitor,
        &model,
        EngineConfig {
            workers: 2,
            max_batch: 8,
            queue_capacity: 256,
        },
    )
    .expect("MLP replicates");
    assert_eq!(engine.monitor_layered().num_layers(), 1);
    let query = GradedQuery::new(2, 2);
    for x in probes.iter().take(30) {
        let single = engine.check(x).expect("engine up");
        let layered = engine.check_layered(x).expect("engine up");
        // The layered verdict of an N = 1 engine *is* the single view.
        assert_eq!(layered.per_layer.len(), 1);
        assert_eq!(layered.to_single(), single);
        assert_eq!(layered.combined, single.report.verdict);
        // And both equal sequential checking.
        assert_eq!(single.report, monitor.check(&mut model, x));
        let graded = engine.check_layered_graded(x, query).expect("engine up");
        let graded_single = engine.check_graded(x, query).expect("engine up");
        assert_eq!(graded.to_single(), graded_single);
        assert_eq!(
            graded.graded.as_deref().expect("graded"),
            std::slice::from_ref(
                &monitor
                    .check_graded(&mut model, x, query)
                    .expect("Monitor grades")
            )
        );
    }
    engine.shutdown();
}

#[test]
fn layered_hot_swap_keeps_verdicts_attributable() {
    let (layered, mut model, probes) = layered_fixture(37, 30, CombinePolicy::Any);
    let engine = layered_engine(&layered, &model, 2);
    let before = layered.check_batch(&mut model, &probes);

    // Enlarge every layer: the epoch-1 family.
    let mut grown = LayeredMonitor::new(
        layered
            .monitors()
            .iter()
            .map(|m| {
                let snap = m.snapshot();
                Monitor::<BddZone>::from_snapshot(&snap).expect("restore")
            })
            .collect(),
        layered.policy(),
    );
    grown.enlarge_to(2);
    let after = grown.check_batch(&mut model, &probes);

    let epoch = engine
        .publish_layered(FrozenLayeredMonitor::shard_by_class(&grown, 2))
        .expect("compatible");
    assert_eq!(epoch, 1);
    assert_eq!(engine.epoch(), 1);
    assert_eq!(engine.monitor_layered().epoch(), 1);

    let served = engine.check_layered_batch(&probes).expect("engine up");
    for (i, s) in served.iter().enumerate() {
        let want = match s.epoch {
            0 => &before[i],
            1 => &after[i],
            e => panic!("unexpected epoch {e}"),
        };
        let verdicts: Vec<Verdict> = s.per_layer.iter().map(|r| r.verdict).collect();
        assert_eq!(s.predicted, want.predicted, "probe {i}");
        assert_eq!(verdicts, want.per_layer, "probe {i} epoch {}", s.epoch);
        assert_eq!(s.combined, want.combined, "probe {i} epoch {}", s.epoch);
    }
    engine.shutdown();
}

#[test]
fn publish_layered_rejects_incompatible_families() {
    let (layered, model, _) = layered_fixture(41, 0, CombinePolicy::Any);
    let engine = layered_engine(&layered, &model, 2);

    // Different layer count.
    let single =
        FrozenLayeredMonitor::from_single(FrozenMonitor::shard_by_class(&layered.monitors()[0], 2));
    assert!(matches!(
        engine.publish_layered(single),
        Err(EngineError::IncompatibleMonitor("layer count differs"))
    ));

    // Different combine policy.
    let repolicied = FrozenLayeredMonitor::try_from_monitors(
        layered
            .monitors()
            .iter()
            .map(|m| FrozenMonitor::shard_by_class(m, 2))
            .collect(),
        CombinePolicy::All,
    )
    .expect("valid family");
    assert!(matches!(
        engine.publish_layered(repolicied),
        Err(EngineError::IncompatibleMonitor("combine policy differs"))
    ));

    // Different layer order (monitored layer differs slot-for-slot).
    let swapped = FrozenLayeredMonitor::try_from_monitors(
        layered
            .monitors()
            .iter()
            .rev()
            .map(|m| FrozenMonitor::shard_by_class(m, 2))
            .collect(),
        layered.policy(),
    )
    .expect("valid family");
    assert!(matches!(
        engine.publish_layered(swapped),
        Err(EngineError::IncompatibleMonitor("monitored layer differs"))
    ));

    // The engine still serves the original snapshot at epoch 0.
    assert_eq!(engine.epoch(), 0);
    engine.shutdown();
}

#[test]
fn drift_is_tracked_per_layer_and_combined() {
    let (layered, _model, probes) = layered_fixture(43, 60, CombinePolicy::Any);
    let engine = layered_engine(&layered, &_model, 2);
    engine.enable_drift(DriftConfig {
        baseline_rate: 0.05,
        alarm_rate: 0.5,
        window: 10,
        ewma_alpha: 0.2,
        patience: 5,
    });
    engine.check_layered_batch(&probes).expect("engine up");
    let combined = engine.drift_status().expect("armed");
    assert_eq!(combined.len(), CLASSES);
    let by_layer = engine.drift_status_by_layer().expect("armed");
    assert_eq!(by_layer.len(), layered.monitors().len());
    // Slots report the model layer indices in family order (deep first).
    let layers: Vec<usize> = by_layer.iter().map(|l| l.layer).collect();
    let want: Vec<usize> = layered.monitors().iter().map(|m| m.layer()).collect();
    assert_eq!(layers, want);
    let total_observed: usize = combined.iter().map(|c| c.observed).sum();
    assert_eq!(total_observed, probes.len());
    for layer in &by_layer {
        assert_eq!(layer.classes.len(), CLASSES);
        let observed: usize = layer.classes.iter().map(|c| c.observed).sum();
        assert_eq!(observed, probes.len(), "layer {}", layer.layer);
        assert!(layer.classes.iter().all(|c| c.epoch == 0));
        // Per-layer statuses carry no distance EWMA (combined-only).
        assert!(layer.classes.iter().all(|c| c.mean_distance.is_none()));
    }
    // Publishing re-arms every detector, combined and per-layer.
    let refrozen = FrozenLayeredMonitor::shard_by_class(&layered, 2);
    engine.publish_layered(refrozen).expect("compatible");
    for layer in engine.drift_status_by_layer().expect("armed") {
        assert!(layer
            .classes
            .iter()
            .all(|c| c.observed == 0 && c.epoch == 1));
    }
    engine.shutdown();
}

// ---------------------------------------------------------------------
// Persistence: versioned container + pre-layered backward compatibility.
// ---------------------------------------------------------------------

fn p(bits: &[u8]) -> Pattern {
    Pattern::from_bools(&bits.iter().map(|&b| b == 1).collect::<Vec<_>>())
}

/// A deterministic (RNG-free) monitor: immune to vendored-RNG retunings,
/// so the golden fixture below never needs re-blessing for fixture
/// drift.
fn deterministic_monitor(layer: usize, width: usize, num_classes: usize) -> Monitor<BddZone> {
    use naps_core::Zone;
    let zones: Vec<Option<BddZone>> = (0..num_classes)
        .map(|c| {
            if c == 1 {
                return None; // one unmonitored class
            }
            let mut z = BddZone::empty(width);
            for k in 0..3u64 {
                let bits: Vec<u8> = (0..width)
                    .map(|b| (((c as u64 + k) >> (b % 3)) & 1) as u8)
                    .collect();
                z.insert(&p(&bits));
            }
            z.enlarge_to(1);
            Some(z)
        })
        .collect();
    Monitor::from_zones(zones, layer, NeuronSelection::all(width), 1)
}

fn golden_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("frozen_monitor_v1.json")
}

fn golden_v2_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("frozen_layered_v2.json")
}

/// The deterministic format-2 family the v2 golden fixture is blessed
/// from — must stay byte-for-byte reproducible (no RNG anywhere).
fn deterministic_family() -> FrozenLayeredMonitor {
    FrozenLayeredMonitor::try_from_monitors(
        vec![
            FrozenMonitor::shard_by_class(&deterministic_monitor(1, 6, 4), 2),
            FrozenMonitor::shard_by_class(&deterministic_monitor(3, 6, 4), 3),
        ],
        CombinePolicy::Majority,
    )
    .expect("valid family")
    .with_epoch(7)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("naps_serve_layered_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn layered_container_roundtrips() {
    let a = deterministic_monitor(1, 6, 4);
    let b = deterministic_monitor(3, 6, 4);
    let layered = FrozenLayeredMonitor::try_from_monitors(
        vec![
            FrozenMonitor::shard_by_class(&a, 2),
            FrozenMonitor::shard_by_class(&b, 3),
        ],
        CombinePolicy::Majority,
    )
    .expect("valid family")
    .with_epoch(9);
    let path = temp_path("layered_roundtrip.json");
    layered.save(&path).expect("save");
    let restored = FrozenLayeredMonitor::load(&path).expect("load");
    assert_eq!(restored, layered);
    assert_eq!(restored.epoch(), 9);
    assert_eq!(restored.policy(), CombinePolicy::Majority);
    assert_eq!(restored.num_layers(), 2);
    // Per-layer monitors keep their shard layout and carry the container
    // epoch.
    assert_eq!(restored.layers()[0].shards().len(), 2);
    assert_eq!(restored.layers()[1].shards().len(), 3);
    assert!(restored.layers().iter().all(|l| l.epoch() == 9));
    let _ = std::fs::remove_file(&path);
}

/// The pre-layered (format 1) golden fixture must load through the
/// layered path forever.  Re-bless (only on a deliberate format-1
/// writer change, which should never happen again) with
/// `GOLDEN_BLESS=1 cargo test -p naps-serve layered`.
#[test]
fn pre_layered_golden_file_still_loads() {
    let path = golden_path();
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        let monitor =
            FrozenMonitor::shard_by_class(&deterministic_monitor(1, 6, 4), 2).with_epoch(5);
        monitor.save(&path).expect("bless golden");
        return;
    }
    let via_single = FrozenMonitor::load(&path).unwrap_or_else(|e| {
        panic!(
            "golden v1 fixture {} failed to load ({e}); re-bless with GOLDEN_BLESS=1",
            path.display()
        )
    });
    let via_layered = FrozenLayeredMonitor::load(&path).expect("v1 file lifts to N = 1");
    assert_eq!(via_layered.num_layers(), 1);
    assert_eq!(via_layered.epoch(), 5);
    assert_eq!(via_layered.layers()[0].as_ref(), &via_single);
    // Behavioural equality over the whole pattern space.
    for m in 0..64u32 {
        let bits: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
        let pat = Pattern::from_bools(&bits);
        for c in 0..4 {
            let lifted = via_layered.report(c, std::slice::from_ref(&pat));
            let single = via_single.report(c, &pat);
            assert_eq!(lifted.per_layer, vec![single.clone()]);
            assert_eq!(lifted.combined, single.verdict);
        }
    }
}

/// Compiled evaluators are **derived, never serialized**: both golden
/// containers (format 1 single-monitor and format 2 layered) must hold
/// snapshots only, and loading them must recompile evaluators
/// bit-identical (`==`, including every fast-path decision) to freshly
/// frozen monitors built from the same deterministic zones.  Re-bless
/// the format-2 fixture with
/// `GOLDEN_BLESS=1 cargo test -p naps-serve layered`.
#[test]
fn golden_files_recompile_to_identical_evaluators() {
    use naps_bdd::CompiledZone;
    let v2 = golden_v2_path();
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(v2.parent().expect("parent")).expect("mkdir");
        deterministic_family().save(&v2).expect("bless v2 golden");
        return;
    }

    // Neither golden may carry compiled artifacts — snapshots only.
    for path in [golden_path(), v2.clone()] {
        let text = std::fs::read_to_string(&path).expect("golden readable");
        for key in ["zone_eval", "seed_eval", "compiled", "small_index"] {
            assert!(
                !text.contains(key),
                "{} leaks compiled artifact key {key:?} into the wire format",
                path.display()
            );
        }
    }

    // Format 1: the restored monitor equals a freshly frozen one —
    // `PartialEq` covers the compiled evaluators, so this pins that
    // load-time recompilation reproduces freeze-time compilation
    // exactly.
    let v1 = FrozenMonitor::load(&golden_path()).expect("v1 golden loads");
    let fresh_v1 = FrozenMonitor::shard_by_class(&deterministic_monitor(1, 6, 4), 2).with_epoch(5);
    assert_eq!(v1, fresh_v1, "v1 recompiled ≠ freshly frozen");

    // Format 2: same invariant through the layered container.
    let restored = FrozenLayeredMonitor::load(&v2).unwrap_or_else(|e| {
        panic!(
            "golden v2 fixture {} failed to load ({e}); re-bless with GOLDEN_BLESS=1",
            v2.display()
        )
    });
    assert_eq!(
        restored,
        deterministic_family(),
        "v2 recompiled ≠ freshly frozen"
    );

    // And zone-for-zone: the restored evaluators equal a from-scratch
    // compile of the restored snapshots (compilation is deterministic).
    for monitor in restored
        .layers()
        .iter()
        .map(|l| l.as_ref())
        .chain(std::iter::once(&v1))
    {
        for c in 0..monitor.num_classes() {
            let Some(zone) = monitor.zone(c) else {
                continue;
            };
            assert_eq!(
                zone.zone_eval(),
                &CompiledZone::compile(zone.zone_snapshot())
            );
            assert_eq!(
                zone.seed_eval(),
                &CompiledZone::compile(zone.seed_snapshot())
            );
        }
    }
}

#[test]
fn corrupt_layered_containers_error_never_panic() {
    assert!(matches!(
        FrozenLayeredMonitor::load(std::path::Path::new("/nonexistent/naps_layered.json")),
        Err(PersistError::Io(_))
    ));

    let path = temp_path("layered_garbage.json");
    std::fs::write(&path, "{not json").expect("write");
    assert!(matches!(
        FrozenLayeredMonitor::load(&path),
        Err(PersistError::Format(_))
    ));

    let layered = FrozenLayeredMonitor::try_from_monitors(
        vec![FrozenMonitor::freeze(&deterministic_monitor(1, 6, 4))],
        CombinePolicy::Any,
    )
    .expect("valid family");
    layered.save(&path).expect("save");
    let text = std::fs::read_to_string(&path).expect("read");
    assert!(
        FrozenLayeredMonitor::load(&path).is_ok(),
        "sane before tampering"
    );

    // Truncation anywhere inside the container must be a Format error.
    for frac in [4usize, 2] {
        std::fs::write(&path, &text[..text.len() / frac]).expect("write");
        assert!(matches!(
            FrozenLayeredMonitor::load(&path),
            Err(PersistError::Format(_))
        ));
    }

    // An unknown container version is Incompatible.
    std::fs::write(
        &path,
        text.replacen("\"format\":2", "\"format\":99", 1).replacen(
            "\"format\": 2",
            "\"format\": 99",
            1,
        ),
    )
    .expect("write");
    assert!(matches!(
        FrozenLayeredMonitor::load(&path),
        Err(PersistError::Incompatible(_))
    ));

    // A structurally broken per-layer record (zero shards) is rejected by
    // the shared per-layer validation.
    std::fs::write(
        &path,
        text.replacen("\"num_shards\":1", "\"num_shards\":0", 1)
            .replacen("\"num_shards\": 1", "\"num_shards\": 0", 1),
    )
    .expect("write");
    assert!(matches!(
        FrozenLayeredMonitor::load(&path),
        Err(PersistError::Incompatible("zero shards"))
    ));
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Property suite: a single wrapped monitor is bit-identical to the bare
// monitor — binary and graded, live and frozen, across gammas and hot
// swaps.
// ---------------------------------------------------------------------

const IN_DIM: usize = 2;

fn input() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, IN_DIM)
}

fn batch() -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(input(), 1..8)
}

fn labelled() -> impl Strategy<Value = Vec<(Vec<f32>, usize)>> {
    proptest::collection::vec((input(), 0usize..CLASSES), 4..12)
}

fn tensors(rows: &[Vec<f32>]) -> Vec<Tensor> {
    rows.iter()
        .map(|r| Tensor::from_vec(vec![r.len()], r.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `LayeredMonitor([m])` / the N = 1 engine ≡ bare `m`, binary and
    /// graded, for random (untrained — determinism is what matters)
    /// networks, random gammas, random probes, and across a hot swap to
    /// a larger gamma.
    #[test]
    fn n1_layered_is_bit_identical_to_bare_monitor(
        seed in 0u64..500,
        data in labelled(),
        probes in batch(),
        gamma in 0u32..3,
        swap_gamma in 3u32..5,
        budget in 0u32..4,
    ) {
        let mut model = naps_nn::mlp(&[IN_DIM, 8, 6, CLASSES], &mut StdRng::seed_from_u64(seed));
        let xs = tensors(&data.iter().map(|(x, _)| x.clone()).collect::<Vec<_>>());
        let ys: Vec<usize> = data.iter().map(|(_, y)| *y).collect();
        let probes = tensors(&probes);
        let query = GradedQuery::new(budget, 2);

        let bare = MonitorBuilder::new(1, gamma).build::<BddZone>(&mut model, &xs, &ys, CLASSES);
        let wrapped = LayeredMonitor::new(
            vec![MonitorBuilder::new(1, gamma).build::<BddZone>(&mut model, &xs, &ys, CLASSES)],
            CombinePolicy::Majority,
        );

        // Live: binary and graded.
        let bare_binary = bare.check_batch(&mut model, &probes);
        let layered_binary = wrapped.check_batch(&mut model, &probes);
        let bare_graded = bare.check_graded_batch(&mut model, &probes, query);
        let layered_graded = wrapped.check_graded_batch(&mut model, &probes, query);
        for (((b, l), (bg, lg)), _x) in bare_binary.iter().zip(&layered_binary)
            .zip(bare_graded.iter().zip(&layered_graded))
            .zip(&probes)
        {
            prop_assert_eq!(l.predicted, b.predicted);
            prop_assert_eq!(l.combined, b.verdict);
            prop_assert_eq!(&l.per_layer, &vec![b.verdict]);
            prop_assert_eq!(&lg.per_layer, std::slice::from_ref(bg));
            prop_assert_eq!(lg.combined, bg.report.verdict);
        }

        // Served N = 1 engine ≡ bare monitor, across a hot swap.
        let engine = MonitorEngine::new(&bare, &model, EngineConfig {
            workers: 2,
            max_batch: 4,
            queue_capacity: 64,
        }).expect("MLP replicates");
        let served = engine.check_batch(&probes).expect("engine up");
        for (s, b) in served.iter().zip(&bare_binary) {
            prop_assert_eq!(s.epoch, 0);
            prop_assert_eq!(&s.report, b);
        }
        let served_graded = engine.check_graded_batch(&probes, query).expect("engine up");
        for (s, bg) in served_graded.iter().zip(&bare_graded) {
            prop_assert_eq!(s.graded.as_ref(), Some(bg));
        }

        // Hot swap to a grown zone set: verdicts at epoch 1 equal the
        // grown bare monitor's.
        let mut grown = Monitor::<BddZone>::from_snapshot(&bare.snapshot()).expect("restore");
        grown.enlarge_to(swap_gamma);
        engine.publish(FrozenMonitor::shard_by_class(&grown, 2)).expect("compatible");
        let grown_binary = grown.check_batch(&mut model, &probes);
        let grown_graded = grown.check_graded_batch(&mut model, &probes, query);
        let served = engine.check_graded_batch(&probes, query).expect("engine up");
        for (i, s) in served.iter().enumerate() {
            let (want_b, want_g) = match s.epoch {
                0 => (&bare_binary[i], &bare_graded[i]),
                1 => (&grown_binary[i], &grown_graded[i]),
                e => panic!("unexpected epoch {e}"),
            };
            prop_assert_eq!(&s.report, want_b);
            prop_assert_eq!(s.graded.as_ref(), Some(want_g));
        }
        engine.shutdown();
    }
}
