//! Shared fixture for the `naps-serve` integration suites.
//!
//! Lives here (not in `naps-bench`, which hosts the other shared
//! fixtures) because `naps-bench`'s dev-dependencies include
//! `naps-serve` — the bench crate cannot be a dependency of this one.
//! Both the concurrency and the hot-swap suite must exercise the *same*
//! trained geometry; keeping one definition means any retuning for the
//! vendored RNG stream (see PR 1's fixture history) happens once.

use naps_core::{BddZone, CombinePolicy, LayeredMonitor, Monitor, MonitorBuilder};
use naps_nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Class count of the fixture classifier.
pub const CLASSES: usize = 4;

/// A small trained classifier + γ=1 monitor + probe workload mixing the
/// training inputs with `extra_probes` ring-shaped points, so all three
/// verdicts occur.
pub fn fixture(seed: u64, extra_probes: usize) -> (Monitor<BddZone>, Sequential, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = mlp(&[2, 24, CLASSES], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in 0..CLASSES {
        let angle = c as f32 * std::f32::consts::TAU / CLASSES as f32;
        for k in 0..30 {
            let jitter = (k as f32 * 0.41).sin() * 0.25;
            xs.push(Tensor::from_vec(
                vec![2],
                vec![2.0 * angle.cos() + jitter, 2.0 * angle.sin() - jitter],
            ));
            ys.push(c);
        }
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 25,
        batch_size: 16,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.02), &mut rng);
    let monitor = MonitorBuilder::new(1, 1).build::<BddZone>(&mut net, &xs, &ys, CLASSES);
    let mut probes = xs;
    for i in 0..extra_probes {
        let r = 0.3 + (i % 7) as f32;
        let a = i as f32 * 0.7;
        probes.push(Tensor::from_vec(vec![2], vec![r * a.cos(), r * a.sin()]));
    }
    (monitor, net, probes)
}

/// A deeper trained classifier (`[2, 20, 12, CLASSES]`, two ReLU taps at
/// layers 1 and 3) with one monitor per ReLU, wrapped as a
/// [`LayeredMonitor`] under `policy` — the multi-layer counterpart of
/// [`fixture`], sharing its probe-workload shape.
#[allow(dead_code)] // not every suite uses the layered fixture
pub fn layered_fixture(
    seed: u64,
    extra_probes: usize,
    policy: CombinePolicy,
) -> (LayeredMonitor<BddZone>, Sequential, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = mlp(&[2, 20, 12, CLASSES], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in 0..CLASSES {
        let angle = c as f32 * std::f32::consts::TAU / CLASSES as f32;
        for k in 0..30 {
            let jitter = (k as f32 * 0.41).sin() * 0.25;
            xs.push(Tensor::from_vec(
                vec![2],
                vec![2.0 * angle.cos() + jitter, 2.0 * angle.sin() - jitter],
            ));
            ys.push(c);
        }
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 25,
        batch_size: 16,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.02), &mut rng);
    // Deep (close-to-output) monitor first: it is the primary layer the
    // single-layer projection reads.
    let deep = MonitorBuilder::new(3, 1).build::<BddZone>(&mut net, &xs, &ys, CLASSES);
    let shallow = MonitorBuilder::new(1, 1).build::<BddZone>(&mut net, &xs, &ys, CLASSES);
    let layered = LayeredMonitor::new(vec![deep, shallow], policy);
    let mut probes = xs;
    for i in 0..extra_probes {
        let r = 0.3 + (i % 7) as f32;
        let a = i as f32 * 0.7;
        probes.push(Tensor::from_vec(vec![2], vec![r * a.cos(), r * a.sin()]));
    }
    (layered, net, probes)
}
