//! Live-update acceptance suite (ISSUE 3): swapping an enriched zone
//! snapshot into a **running** engine under load must be non-disruptive
//! and exact —
//!
//! (a) no submission is lost or errored by the swap,
//! (b) every verdict is bit-identical to the sequential monitor **for
//!     the epoch stamped on it**, and
//! (c) `FrozenMonitor::save` → `load` round-trips to an equal monitor,
//!     snapshot for snapshot.
//!
//! Run in release too (CI does): the swap window is timing-sensitive.

use naps_core::{
    ActivationMonitor, BddZone, Monitor, MonitorBuilder, MonitorReport, Pattern, Verdict,
};
use naps_nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps_serve::{EngineConfig, EngineError, FrozenMonitor, MonitorEngine};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

mod common;
use common::CLASSES;

/// The shared serve fixture with this suite's probe count.
fn fixture(seed: u64) -> (Monitor<BddZone>, Sequential, Vec<Tensor>) {
    common::fixture(seed, 160)
}

/// Enriches `monitor` with the observed patterns of every probe the
/// engine would currently flag out-of-pattern ("the operator confirmed
/// them all benign"), returning how many patterns were admitted.
fn confirm_all_warnings(
    monitor: &mut Monitor<BddZone>,
    net: &mut Sequential,
    probes: &[Tensor],
) -> usize {
    let mut confirmed: Vec<(usize, Pattern)> = Vec::new();
    for x in probes {
        let (class, pattern) = monitor.observe(net, x);
        if monitor.check_pattern(class, &pattern) == Verdict::OutOfPattern {
            confirmed.push((class, pattern));
        }
    }
    let mut admitted = 0;
    for (class, pattern) in confirmed {
        admitted += monitor
            .enrich(class, std::slice::from_ref(&pattern))
            .expect("confirmed classes are monitored");
    }
    admitted
}

/// Deadline-polls `cond` with yields (no sleeps — nothing here assumes
/// how fast a loaded CI box schedules threads).
fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::yield_now();
    }
}
#[test]
fn hot_swap_under_load_is_non_disruptive_and_exact() {
    let (mut monitor, mut net, probes) = fixture(21);

    // Epoch-0 oracle: the sequential monitor as built.
    let oracle0: Vec<MonitorReport> = probes.iter().map(|x| monitor.check(&mut net, x)).collect();
    let frozen0 = FrozenMonitor::shard_by_class(&monitor, 2);

    // The enriched monitor (epoch 1): every current warning confirmed
    // benign, compacted, re-frozen.
    let admitted = confirm_all_warnings(&mut monitor, &mut net, &probes);
    assert!(admitted > 0, "fixture produced no out-of-pattern probes");
    monitor.compact_dirty();
    assert!(!monitor.take_dirty().is_empty());
    let oracle1: Vec<MonitorReport> = probes.iter().map(|x| monitor.check(&mut net, x)).collect();
    assert_ne!(oracle0, oracle1, "enrichment changed no verdict");
    let frozen1 = FrozenMonitor::shard_by_class(&monitor, 2);

    // The engine starts on the pre-enrichment (epoch 0) snapshot.
    let snap = naps_nn::ModelSnapshot::capture(&net).expect("mlp");
    let replicas: Vec<Sequential> = (0..4).map(|_| snap.restore()).collect();
    let engine = Arc::new(
        MonitorEngine::with_replicas(
            frozen0,
            replicas,
            EngineConfig {
                workers: 4,
                max_batch: 8,
                queue_capacity: 64,
            },
        )
        .expect("engine"),
    );
    assert_eq!(engine.epoch(), 0);

    // Submitters hammer the engine from several threads while the main
    // thread swaps in the enriched snapshot mid-flight.
    let stop = Arc::new(AtomicBool::new(false));
    let oracle0 = Arc::new(oracle0);
    let oracle1 = Arc::new(oracle1);
    let probes = Arc::new(probes);
    let mut handles = Vec::new();
    for t in 0..4usize {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let probes = Arc::clone(&probes);
        let (oracle0, oracle1) = (Arc::clone(&oracle0), Arc::clone(&oracle1));
        handles.push(std::thread::spawn(move || {
            let n = probes.len();
            let mut submitted = 0u64;
            let mut answered = 0u64;
            let mut epochs_seen = [0u64; 2];
            let mut round = 0usize;
            // ordering: relaxed — quiescent stop flag; no data rides on
            // it, threads just exit at their next check.
            while !stop.load(Ordering::Relaxed) || round == 0 {
                let indices: Vec<usize> = (0..n).map(|k| (t + 3 * k) % n).collect();
                let tickets: Vec<_> = indices
                    .iter()
                    .map(|&i| (i, engine.submit(probes[i].clone()).expect("submit")))
                    .collect();
                submitted += tickets.len() as u64;
                for (i, ticket) in tickets {
                    // (a) every submission is answered, none errored...
                    let got = ticket.wait().expect("worker alive");
                    answered += 1;
                    // (b) ...and matches the oracle of its stamped epoch.
                    let want = match got.epoch {
                        0 => &oracle0[i],
                        1 => &oracle1[i],
                        e => panic!("unknown epoch {e}"),
                    };
                    assert_eq!(
                        &got.report, want,
                        "probe {i} diverged from the epoch-{} oracle",
                        got.epoch
                    );
                    epochs_seen[got.epoch as usize] += 1;
                }
                round += 1;
            }
            assert_eq!(submitted, answered, "submissions lost");
            epochs_seen
        }));
    }

    // Let verdicts flow under epoch 0, then hot-swap.  Deadline-polled
    // on the processed counter — no wall-clock assumption.
    wait_until(
        || engine.stats().processed > 0,
        "no epoch-0 verdict was served",
    );
    let new_epoch = engine
        .publish(frozen1.clone())
        .expect("compatible snapshot");
    assert_eq!(new_epoch, 1);
    assert_eq!(engine.epoch(), 1);
    // Keep the load running until rows submitted *after* the publish
    // have been judged: anything enqueued once publish() returned is
    // served by the new snapshot, so two more probe-set's worth of rows
    // guarantees epoch-1 verdicts in the threads' tallies.
    let goal = engine.stats().processed + 2 * probes.len() as u64;
    wait_until(
        || engine.stats().processed >= goal,
        "no post-swap rows were processed",
    );
    // ordering: relaxed — quiescent stop flag (see the load loop)
    stop.store(true, Ordering::Relaxed);

    let mut seen = [0u64; 2];
    for h in handles {
        let s = h.join().expect("submitter thread panicked");
        seen[0] += s[0];
        seen[1] += s[1];
    }
    // The swap really happened mid-stream: verdicts from both epochs.
    assert!(
        seen[1] > 0,
        "no verdict was served by the enriched snapshot"
    );

    // After the swap the engine serves the enriched zones exclusively.
    let after: Vec<MonitorReport> = engine
        .check_batch(&probes)
        .expect("engine is up")
        .into_iter()
        .map(|r| {
            assert_eq!(r.epoch, 1);
            r.report
        })
        .collect();
    assert_eq!(&after, &*oracle1);

    let stats = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("all submitters joined"))
        .shutdown();
    assert_eq!(stats.swaps, 1);
    assert!(stats.processed > 0);
}

#[test]
fn save_load_roundtrip_equals_the_served_snapshot() {
    let (mut monitor, mut net, probes) = fixture(22);
    confirm_all_warnings(&mut monitor, &mut net, &probes);
    monitor.compact_dirty();
    let frozen = FrozenMonitor::shard_by_class(&monitor, 3).with_epoch(5);

    let dir = std::env::temp_dir().join("naps_hot_swap_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("monitor.json");
    frozen.save(&path).expect("save");
    let restored = FrozenMonitor::load(&path).expect("load");
    // (c) snapshot-for-snapshot equality, epoch included...
    assert_eq!(restored, frozen);
    // ...and the restored monitor serves identically through an engine.
    let engine = MonitorEngine::new(&monitor, &net, EngineConfig::default()).expect("engine");
    let served = engine.check_batch(&probes).expect("engine is up");
    for (x, got) in probes.iter().zip(served) {
        let (class, pattern) = monitor.observe(&mut net, x);
        assert_eq!(
            restored.report(class, &pattern),
            got.report,
            "warm-restarted monitor diverged"
        );
    }
    engine.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn incompatible_publish_is_rejected_and_service_continues() {
    let (monitor, net, probes) = fixture(23);
    let engine = MonitorEngine::new(&monitor, &net, EngineConfig::default()).expect("engine");
    let before = engine.check_batch(&probes).expect("engine is up");

    // A monitor over a different geometry must bounce...
    let (other, _, _) = {
        let mut rng = StdRng::seed_from_u64(99);
        let mut other_net = mlp(&[2, 16, CLASSES], &mut rng);
        let xs: Vec<Tensor> = (0..CLASSES * 8)
            .map(|i| Tensor::from_vec(vec![2], vec![i as f32 * 0.1, -(i as f32) * 0.1]))
            .collect();
        let ys: Vec<usize> = (0..CLASSES * 8).map(|i| i % CLASSES).collect();
        Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 8,
            verbose: false,
        })
        .fit(&mut other_net, &xs, &ys, &mut Adam::new(0.02), &mut rng);
        (
            MonitorBuilder::new(1, 1).build::<BddZone>(&mut other_net, &xs, &ys, CLASSES),
            other_net,
            xs,
        )
    };
    let incompatible = FrozenMonitor::freeze(&other);
    let err = engine.publish(incompatible).expect_err("must be rejected");
    assert!(matches!(err, EngineError::IncompatibleMonitor(_)));

    // ...without disturbing the served snapshot or its epoch.
    assert_eq!(engine.epoch(), 0);
    assert_eq!(engine.check_batch(&probes).expect("engine is up"), before);
    assert_eq!(engine.shutdown().swaps, 0);
}
