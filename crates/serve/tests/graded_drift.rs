//! Acceptance tests for the graded-verdict and drift paths of the
//! engine: graded verdicts must be **bit-identical** to sequential
//! `check_graded` — per stamped epoch, across a hot swap, under
//! concurrency — batch submission must be all-or-nothing on width
//! errors, and per-class drift detectors must raise (and re-arm on
//! publish) with the right epoch stamps.

mod common;

use common::{fixture, CLASSES};
use naps_core::{
    ActivationMonitor, DriftConfig, DriftStatus, GradedQuery, Monitor, Pattern, Verdict,
};
use naps_serve::{EngineConfig, FrozenMonitor, MonitorEngine, SubmitError};
use naps_tensor::Tensor;

fn engine_over(
    monitor: &Monitor<naps_core::BddZone>,
    model: &naps_nn::Sequential,
    workers: usize,
) -> MonitorEngine {
    MonitorEngine::new(
        monitor,
        model,
        EngineConfig {
            workers,
            max_batch: 8,
            queue_capacity: 512,
        },
    )
    .expect("MLP replicates")
}

#[test]
fn engine_graded_verdicts_are_bit_identical_to_sequential() {
    let (monitor, mut model, probes) = fixture(11, 60);
    let engine = engine_over(&monitor, &model, 3);
    for budget in [0u32, 1, 3] {
        let query = GradedQuery::new(budget, 2);
        let sequential = monitor.check_graded_batch(&mut model, &probes, query);
        let served = engine
            .check_graded_batch(&probes, query)
            .expect("engine up");
        assert_eq!(served.len(), sequential.len());
        for (i, (s, want)) in served.iter().zip(&sequential).enumerate() {
            assert_eq!(s.epoch, 0);
            let graded = s.graded.as_ref().expect("graded submission");
            assert_eq!(graded, want, "probe {i} budget {budget}");
            // The binary column is the graded report's embedded one.
            assert_eq!(s.report, graded.report);
        }
    }
    // Plain submissions still carry no graded payload.
    let plain = engine.check(&probes[0]).expect("engine up");
    assert!(plain.graded.is_none());
    engine.shutdown();
}

#[test]
fn graded_verdicts_stay_attributable_across_hot_swap() {
    let (mut monitor, mut model, probes) = fixture(12, 40);
    let query = GradedQuery::new(3, CLASSES);
    let engine = engine_over(&monitor, &model, 2);

    // Sequential oracles for both epochs.
    let oracle0 = monitor.check_graded_batch(&mut model, &probes, query);
    // Epoch 1: enrich a class with a far-out pattern, re-freeze.
    let all_on = vec![true; monitor.selection().len()];
    let confirmed = Pattern::from_bools(&all_on);
    monitor
        .enrich(0, std::slice::from_ref(&confirmed))
        .expect("class 0 is monitored");
    let oracle1 = monitor.check_graded_batch(&mut model, &probes, query);
    let frozen1 = FrozenMonitor::shard_by_class(&monitor, 2);

    // Submit the whole stream, swap while it is in flight.
    let tickets: Vec<_> = probes
        .iter()
        .map(|x| engine.submit_graded(x.clone(), query).expect("engine up"))
        .collect();
    let epoch = engine.publish(frozen1).expect("compatible");
    assert_eq!(epoch, 1);
    for (i, t) in tickets.into_iter().enumerate() {
        let report = t.wait().expect("worker alive");
        let graded = report.graded.as_ref().expect("graded submission");
        let want = match report.epoch {
            0 => &oracle0[i],
            1 => &oracle1[i],
            e => panic!("unexpected epoch {e}"),
        };
        assert_eq!(graded, want, "probe {i} epoch {}", report.epoch);
    }
    // Post-swap, the graded verdicts match the enriched oracle only.
    let after = engine
        .check_graded_batch(&probes, query)
        .expect("engine up");
    for (i, r) in after.iter().enumerate() {
        assert_eq!(r.epoch, 1);
        assert_eq!(r.graded.as_ref().expect("graded"), &oracle1[i]);
    }
    engine.shutdown();
}

#[test]
fn malformed_batch_enqueues_no_work() {
    let (monitor, model, probes) = fixture(13, 0);
    let engine = engine_over(&monitor, &model, 2);
    // A bad width in the middle of the batch: the whole submission must
    // be rejected before anything is queued.
    let mut batch: Vec<Tensor> = probes[..6].to_vec();
    batch.insert(3, Tensor::from_vec(vec![5], vec![0.0; 5]));
    assert!(matches!(
        engine.check_batch(&batch),
        Err(SubmitError::WidthMismatch {
            expected: 2,
            actual: 5
        })
    ));
    assert!(matches!(
        engine.check_graded_batch(&batch, GradedQuery::default()),
        Err(SubmitError::WidthMismatch { .. })
    ));
    // Nothing was enqueued, so after a full drain nothing was processed.
    let stats = engine.shutdown();
    assert_eq!(
        stats.processed, 0,
        "a rejected batch must not leave requests in flight"
    );
}

#[test]
fn drift_detectors_alarm_and_rearm_on_publish() {
    let (mut monitor, mut model, probes) = fixture(14, 0);
    let engine = engine_over(&monitor, &model, 2);
    assert!(engine.drift_status().is_none(), "disarmed by default");
    engine.enable_drift(DriftConfig {
        baseline_rate: 0.01,
        alarm_rate: 0.5,
        window: 8,
        ewma_alpha: 0.3,
        patience: 4,
    });
    let armed = engine.drift_status().expect("armed");
    assert_eq!(armed.len(), CLASSES);
    assert!(armed.iter().all(|c| c.status == DriftStatus::Warmup));
    assert!(armed.iter().all(|c| c.epoch == 0));

    // A stream of inputs the sequential monitor already judges
    // out-of-pattern (selected from a ring sweep), so every predicted
    // class's detector sees a 100% out-of-pattern rate and must alarm
    // once its window fills.
    let wild: Vec<Tensor> = (0..2000)
        .map(|i| {
            let a = i as f32 * 0.39;
            let r = 3.0 + (i % 23) as f32;
            Tensor::from_vec(vec![2], vec![r * a.cos(), r * a.sin()])
        })
        .filter(|x| monitor.check(&mut model, x).verdict == Verdict::OutOfPattern)
        .take(160)
        .collect();
    assert!(
        wild.len() >= 100,
        "ring sweep found too few out-of-pattern inputs ({})",
        wild.len()
    );
    let reports = engine.check_batch(&wild).expect("engine up");
    assert!(
        reports
            .iter()
            .all(|r| r.report.verdict == Verdict::OutOfPattern),
        "engine and sequential monitor must agree on the wild stream"
    );
    let status = engine.drift_status().expect("armed");
    let drifting: Vec<_> = status
        .iter()
        .filter(|c| c.status == DriftStatus::Drifting)
        .collect();
    assert!(
        !drifting.is_empty(),
        "sustained out-of-pattern stream raised no drift alarm: {status:?}"
    );
    for c in &drifting {
        assert_eq!(c.epoch, 0, "evidence was gathered under epoch 0");
        assert!(c.windowed_rate >= 0.5);
        assert!(c.alarms >= 1);
        assert!(c.mean_distance.is_some());
    }
    // Observation counts follow the predicted classes.
    let total: usize = status.iter().map(|c| c.observed).sum();
    assert_eq!(total, wild.len());

    // The operator enriches and publishes: detectors re-arm at epoch 1.
    let (class, pattern) = monitor.observe(&mut model, &wild[0]);
    monitor
        .enrich(class, std::slice::from_ref(&pattern))
        .expect("monitored class");
    let epoch = engine
        .publish(FrozenMonitor::shard_by_class(&monitor, 2))
        .expect("compatible");
    let rearmed = engine.drift_status().expect("still armed");
    assert!(rearmed.iter().all(|c| c.epoch == epoch));
    assert!(rearmed.iter().all(|c| c.status == DriftStatus::Warmup));
    assert!(rearmed.iter().all(|c| c.observed == 0 && c.alarms == 0));

    // reset_drift clears evidence without a publish, keeping the epoch.
    let _ = engine.check_batch(&wild[..16]).expect("engine up");
    engine.reset_drift();
    let cleared = engine.drift_status().expect("still armed");
    assert!(cleared.iter().all(|c| c.observed == 0 && c.epoch == epoch));
    let _ = probes;
    engine.shutdown();
}
