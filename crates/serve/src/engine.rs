//! The parallel monitoring engine: a work-stealing worker pool serving
//! monitored classifications from micro-batches.
//!
//! # Architecture
//!
//! ```text
//!  submit / try_submit / check_batch           workers (one thread each)
//!  ──────────────┐                            ┌───────────────────────────
//!   round-robin  │   per-worker queues        │ pop own queue ─┐
//!   push_back ───┼──► [q0] [q1] [q2] [q3] ────┤ steal siblings ┼─► micro-batch
//!   (bounded:    │         ▲                  │ (back-steal)   ┘     │
//!    blocks or   │         └── work-stealing ─┘                      ▼
//!    Saturated)  │                                   pack_batch → forward
//!                │                                   (own model replica)
//!                │              Arc<FrozenMonitor> ◄── per-class shard lookup
//!                └───────────── callbacks/tickets ◄── MonitorReport per row
//! ```
//!
//! * **Thread safety.** Workers share one immutable [`FrozenMonitor`]
//!   (`Arc`; per-class zones are `Arc<FrozenZone>` snapshots) — reads
//!   take no lock.  The only mutable state per worker is its own model
//!   replica (forward passes cache activations, hence `&mut`).
//! * **Batching.** A worker drains up to `max_batch` requests in one
//!   lock acquisition — its own queue first, then stealing from the
//!   most-loaded sibling — and runs **one** forward pass for the whole
//!   micro-batch.  Under load, batches grow toward `max_batch`
//!   automatically; when idle, a lone request is served immediately.
//! * **Backpressure.** Total queued requests are bounded by
//!   `queue_capacity`: [`MonitorEngine::submit`] blocks for space,
//!   [`MonitorEngine::try_submit`] returns
//!   [`SubmitError::Saturated`] instead.
//! * **Equivalence.** Every path funnels through the same
//!   `pack_batch` → `forward_observe_packed` → shard-lookup pipeline as
//!   the sequential [`naps_core::Monitor::check_batch`], so verdicts are
//!   bit-identical to sequential checking regardless of how requests
//!   interleave (asserted by the crate's concurrency tests).

use crate::frozen::FrozenMonitor;
use naps_core::{BddZone, Monitor, MonitorReport};
use naps_nn::{ModelSnapshot, Sequential, SnapshotError};
use naps_tensor::Tensor;
use serde::Serialize;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Sizing knobs of a [`MonitorEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (and model replicas, and class shards).
    pub workers: usize,
    /// Largest micro-batch a worker packs into one forward pass.
    pub max_batch: usize,
    /// Bound on requests queued across all workers (backpressure).
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    /// Four workers, micro-batches of 16, 1024 queued requests.
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            max_batch: 16,
            queue_capacity: 1024,
        }
    }
}

/// Why an engine could not be constructed.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The model contains a layer [`ModelSnapshot`] cannot replicate
    /// (e.g. convolution); provide per-worker replicas via
    /// [`MonitorEngine::with_replicas`] instead.
    UnsupportedModel(SnapshotError),
    /// A sizing knob is zero.
    InvalidConfig(&'static str),
    /// `with_replicas` got a replica count different from
    /// [`EngineConfig::workers`].
    ReplicaCountMismatch {
        /// Configured worker count.
        expected: usize,
        /// Provided model replicas.
        actual: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsupportedModel(e) => write!(f, "cannot replicate model: {e}"),
            EngineError::InvalidConfig(what) => write!(f, "invalid engine config: {what}"),
            EngineError::ReplicaCountMismatch { expected, actual } => {
                write!(f, "need {expected} model replicas, got {actual}")
            }
        }
    }
}

impl Error for EngineError {}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The bounded queue is full ([`MonitorEngine::try_submit`] only —
    /// the blocking paths wait for space instead).
    Saturated,
    /// The engine is shutting down.
    ShutDown,
    /// The input's width does not match the model's input dimension.
    /// Rejected at submission so one malformed request cannot panic a
    /// worker mid-batch (which would take unrelated co-batched requests
    /// — and the worker — down with it).
    WidthMismatch {
        /// The model's input dimension.
        expected: usize,
        /// The submitted tensor's length.
        actual: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated => write!(f, "engine queue is full"),
            SubmitError::ShutDown => write!(f, "engine is shut down"),
            SubmitError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "input width {actual} does not match model input {expected}"
                )
            }
        }
    }
}

impl Error for SubmitError {}

/// Counters accumulated over an engine's lifetime.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct EngineStats {
    /// Requests fully served.
    pub processed: u64,
    /// Micro-batches (forward passes) executed.
    pub batches: u64,
    /// Requests obtained by stealing from a sibling's queue.
    pub stolen: u64,
    /// Largest micro-batch packed into one forward pass.
    pub largest_batch: u64,
}

type Callback = Box<dyn FnOnce(MonitorReport) + Send + 'static>;

struct Request {
    input: Tensor,
    complete: Callback,
}

struct State {
    /// One FIFO per worker; submissions round-robin, owners pop the
    /// front, thieves pop the back.
    queues: Vec<VecDeque<Request>>,
    /// Total queued requests (bounded by `queue_capacity`).
    pending: usize,
    /// Round-robin submission cursor.
    next: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers when requests arrive (or shutdown begins).
    work: Condvar,
    /// Wakes blocked submitters when queue space frees up.
    space: Condvar,
    max_batch: usize,
    queue_capacity: usize,
    /// The model's input dimension, when derivable (MLP-style stacks):
    /// submissions of any other width are rejected up front.
    input_len: Option<usize>,
    processed: AtomicU64,
    batches: AtomicU64,
    stolen: AtomicU64,
    largest_batch: AtomicUsize,
}

/// A handle to one in-flight submission; redeem with
/// [`VerdictTicket::wait`].
#[derive(Debug)]
pub struct VerdictTicket {
    rx: mpsc::Receiver<MonitorReport>,
}

impl VerdictTicket {
    /// Blocks until the verdict is ready.
    ///
    /// # Panics
    ///
    /// Panics if the serving worker died before answering (a worker
    /// panic — an engine bug, not a monitoring verdict).
    pub fn wait(self) -> MonitorReport {
        self.rx
            .recv()
            .expect("engine worker dropped the request without answering")
    }

    /// Returns the verdict if it is already available, `None` while the
    /// request is still queued or in flight.
    ///
    /// # Panics
    ///
    /// Panics if the serving worker died before answering — the same
    /// loud failure as [`VerdictTicket::wait`], rather than reading as
    /// "not ready yet" forever.
    pub fn try_wait(&self) -> Option<MonitorReport> {
        match self.rx.try_recv() {
            Ok(report) => Some(report),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("engine worker dropped the request without answering")
            }
        }
    }
}

/// A parallel monitoring service over a frozen [`Monitor`].
///
/// See the [module docs](self) for the architecture.  Construct with
/// [`MonitorEngine::new`] (replicates the model via [`ModelSnapshot`])
/// or [`MonitorEngine::with_replicas`] (caller-supplied replicas, e.g.
/// for convolutional models), submit with
/// [`submit`](MonitorEngine::submit) /
/// [`submit_with`](MonitorEngine::submit_with) /
/// [`check_batch`](MonitorEngine::check_batch), and stop with
/// [`shutdown`](MonitorEngine::shutdown) (or just drop it — remaining
/// queued requests are drained first either way).
pub struct MonitorEngine {
    shared: Arc<Shared>,
    monitor: Arc<FrozenMonitor>,
    workers: Vec<JoinHandle<()>>,
}

impl MonitorEngine {
    /// Builds an engine over `monitor`, sharding its classes across
    /// `config.workers` shards and replicating `model` once per worker.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnsupportedModel`] when the model cannot be
    /// snapshot-replicated (use [`MonitorEngine::with_replicas`]), or
    /// [`EngineError::InvalidConfig`] on zero-sized knobs.
    pub fn new(
        monitor: &Monitor<BddZone>,
        model: &Sequential,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let snap = ModelSnapshot::capture(model).map_err(EngineError::UnsupportedModel)?;
        let replicas = (0..config.workers).map(|_| snap.restore()).collect();
        Self::with_replicas(
            FrozenMonitor::shard_by_class(monitor, config.workers.max(1)),
            replicas,
            config,
        )
    }

    /// Builds an engine from an already-frozen monitor and caller-made
    /// model replicas (one per worker).  The replicas must be
    /// behaviourally identical — verdict equivalence with sequential
    /// checking is only as good as the replication.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] on zero-sized knobs,
    /// [`EngineError::ReplicaCountMismatch`] when
    /// `replicas.len() != config.workers`.
    pub fn with_replicas(
        monitor: FrozenMonitor,
        replicas: Vec<Sequential>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        if config.workers == 0 {
            return Err(EngineError::InvalidConfig("workers must be > 0"));
        }
        if config.max_batch == 0 {
            return Err(EngineError::InvalidConfig("max_batch must be > 0"));
        }
        if config.queue_capacity == 0 {
            return Err(EngineError::InvalidConfig("queue_capacity must be > 0"));
        }
        if replicas.len() != config.workers {
            return Err(EngineError::ReplicaCountMismatch {
                expected: config.workers,
                actual: replicas.len(),
            });
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..config.workers).map(|_| VecDeque::new()).collect(),
                pending: 0,
                next: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            max_batch: config.max_batch,
            queue_capacity: config.queue_capacity,
            input_len: model_input_len(&replicas[0]),
            processed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
        });
        let monitor = Arc::new(monitor);
        let workers = replicas
            .into_iter()
            .enumerate()
            .map(|(id, model)| {
                let shared = Arc::clone(&shared);
                let monitor = Arc::clone(&monitor);
                std::thread::Builder::new()
                    .name(format!("naps-serve-{id}"))
                    .spawn(move || worker_loop(id, &shared, &monitor, model))
                    .expect("spawn engine worker")
            })
            .collect();
        Ok(MonitorEngine {
            shared,
            monitor,
            workers,
        })
    }

    /// The frozen monitor being served.
    pub fn monitor(&self) -> &FrozenMonitor {
        &self.monitor
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queues `input` and invokes `complete` with the verdict on a
    /// worker thread — the callback-style API for event loops that must
    /// not block.  Blocks only while the bounded queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WidthMismatch`] when the input width is wrong for
    /// the model.
    pub fn submit_with<F>(&self, input: Tensor, complete: F) -> Result<(), SubmitError>
    where
        F: FnOnce(MonitorReport) + Send + 'static,
    {
        self.enqueue(input, Box::new(complete), true)
    }

    /// Queues `input`, blocking while the queue is full, and returns a
    /// ticket to wait on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WidthMismatch`] when the input width is wrong for
    /// the model.
    pub fn submit(&self, input: Tensor) -> Result<VerdictTicket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            input,
            Box::new(move |report| {
                let _ = tx.send(report);
            }),
            true,
        )?;
        Ok(VerdictTicket { rx })
    }

    /// Non-blocking [`MonitorEngine::submit`]: fails with
    /// [`SubmitError::Saturated`] instead of waiting for queue space.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the queue is full,
    /// [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WidthMismatch`] when the input width is wrong for
    /// the model.
    pub fn try_submit(&self, input: Tensor) -> Result<VerdictTicket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            input,
            Box::new(move |report| {
                let _ = tx.send(report);
            }),
            false,
        )?;
        Ok(VerdictTicket { rx })
    }

    /// Checks one input synchronously through the pool.
    ///
    /// # Panics
    ///
    /// Panics on a wrong-width input (mirroring the sequential
    /// [`Monitor::check`] contract).
    pub fn check(&self, input: &Tensor) -> MonitorReport {
        self.submit(input.clone())
            .unwrap_or_else(|e| panic!("check: {e}"))
            .wait()
    }

    /// Checks a batch synchronously, preserving input order.  The batch
    /// is fanned out across the pool as individual requests, so workers
    /// micro-batch and steal freely; results are reassembled by index.
    ///
    /// # Panics
    ///
    /// Panics on a wrong-width input (mirroring the sequential
    /// [`Monitor::check_batch`] contract).
    pub fn check_batch(&self, inputs: &[Tensor]) -> Vec<MonitorReport> {
        let (tx, rx) = mpsc::channel();
        for (i, input) in inputs.iter().enumerate() {
            let tx = tx.clone();
            self.submit_with(input.clone(), move |report| {
                let _ = tx.send((i, report));
            })
            .unwrap_or_else(|e| panic!("check_batch: {e}"));
        }
        drop(tx);
        let mut out: Vec<Option<MonitorReport>> = vec![None; inputs.len()];
        for (i, report) in rx {
            out[i] = Some(report);
        }
        out.into_iter()
            .map(|r| r.expect("one report per input"))
            .collect()
    }

    /// Lifetime counters (throughput, batching and stealing behaviour).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            processed: self.shared.processed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            largest_batch: self.shared.largest_batch.load(Ordering::Relaxed) as u64,
        }
    }

    /// Stops accepting submissions, drains the queues, joins the
    /// workers and returns the final counters.
    pub fn shutdown(mut self) -> EngineStats {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    fn enqueue(&self, input: Tensor, complete: Callback, block: bool) -> Result<(), SubmitError> {
        if let Some(expected) = self.shared.input_len {
            if input.len() != expected {
                return Err(SubmitError::WidthMismatch {
                    expected,
                    actual: input.len(),
                });
            }
        }
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.shutdown {
                return Err(SubmitError::ShutDown);
            }
            if state.pending < self.shared.queue_capacity {
                break;
            }
            if !block {
                return Err(SubmitError::Saturated);
            }
            state = self
                .shared
                .space
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        let slot = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        state.queues[slot].push_back(Request { input, complete });
        state.pending += 1;
        drop(state);
        // Any worker may serve it: idle workers steal from `slot`.
        self.shared.work.notify_one();
        Ok(())
    }
}

impl Drop for MonitorEngine {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Input width of an MLP-style model, when derivable: walks leading
/// width-preserving layers (ReLU / leaky ReLU / dropout / flatten) to
/// the first fully-connected layer and reads its weight matrix's input
/// dimension.  Returns `None` for geometries this cannot see through
/// (convolution, pooling, batch norm) — those engines skip submission
/// validation and rely on the caller, as the sequential API does.
fn model_input_len(model: &Sequential) -> Option<usize> {
    use naps_nn::{Dense, Dropout, Flatten, LeakyRelu, Relu};
    for i in 0..model.len() {
        let layer = model.layer(i);
        let any = layer.as_any();
        if let Some(dense) = any.downcast_ref::<Dense>() {
            return Some(dense.weights().shape()[0]);
        }
        if any.downcast_ref::<Flatten>().is_some() {
            // Flatten is width-preserving: its feature count is the
            // model's input width.
            return Some(layer.output_len());
        }
        let width_preserving = any.downcast_ref::<Relu>().is_some()
            || any.downcast_ref::<LeakyRelu>().is_some()
            || any.downcast_ref::<Dropout>().is_some();
        if !width_preserving {
            return None;
        }
    }
    None
}

/// Pops a micro-batch for worker `id`: own queue first (FIFO), then
/// back-stealing from the most-loaded sibling.  Returns `None` to shut
/// down.  Blocks on the `work` condvar while idle.
fn next_batch(id: usize, shared: &Shared) -> Option<Vec<Request>> {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if state.pending > 0 {
            let mut batch = Vec::new();
            while batch.len() < shared.max_batch {
                match state.queues[id].pop_front() {
                    Some(r) => batch.push(r),
                    None => break,
                }
            }
            let mut stolen = 0u64;
            while batch.len() < shared.max_batch {
                let victim = (0..state.queues.len())
                    .filter(|&q| q != id && !state.queues[q].is_empty())
                    .max_by_key(|&q| state.queues[q].len());
                let Some(victim) = victim else { break };
                // Take up to half the victim's backlog (at least one),
                // from the back — the owner keeps draining the front.
                let take = state.queues[victim]
                    .len()
                    .div_ceil(2)
                    .min(shared.max_batch - batch.len());
                for _ in 0..take {
                    let r = state.queues[victim].pop_back().expect("victim non-empty");
                    batch.push(r);
                }
                stolen += take as u64;
            }
            if !batch.is_empty() {
                state.pending -= batch.len();
                drop(state);
                shared.space.notify_all();
                shared.stolen.fetch_add(stolen, Ordering::Relaxed);
                shared.batches.fetch_add(1, Ordering::Relaxed);
                shared
                    .largest_batch
                    .fetch_max(batch.len(), Ordering::Relaxed);
                return Some(batch);
            }
        }
        if state.shutdown {
            // Queues are empty (pending == 0 or this worker saw nothing
            // poppable) and no more submissions can arrive: done.
            return None;
        }
        state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
    }
}

fn worker_loop(id: usize, shared: &Shared, monitor: &FrozenMonitor, mut model: Sequential) {
    while let Some(batch) = next_batch(id, shared) {
        let (inputs, callbacks): (Vec<Tensor>, Vec<Callback>) =
            batch.into_iter().map(|r| (r.input, r.complete)).unzip();
        let reports = monitor.check_batch(&mut model, &inputs);
        shared
            .processed
            .fetch_add(reports.len() as u64, Ordering::Relaxed);
        for (complete, report) in callbacks.into_iter().zip(reports) {
            complete(report);
        }
    }
}
