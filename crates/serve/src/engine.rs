//! The parallel monitoring engine: a work-stealing worker pool serving
//! monitored classifications from micro-batches.
//!
//! # Architecture
//!
//! ```text
//!  submit / try_submit / check_batch           workers (one thread each)
//!  submit_layered / check_layered_batch       ┌───────────────────────────
//!  ──────────────┐                            │ pop own queue ─┐
//!   round-robin  │   per-worker queues        │ steal siblings ┼─► micro-batch
//!   push_back ───┼──► [q0] [q1] [q2] [q3] ────┤ (back-steal)   ┘     │
//!   (bounded:    │         ▲                  │                      ▼
//!    blocks or   │         └── work-stealing ─┘     pack_batch → one plan-observed
//!    Saturated)  │                                  forward pass (own replica)
//!                │                                            │
//!                │   Arc<FrozenLayeredMonitor> ◄── per-layer, per-class
//!                │   (one FrozenMonitor per layer)   shard lookups
//!                └── callbacks/tickets ◄── CombinePolicy fold ◄─┘
//!                    (LayeredEpochReport; EpochReport = N=1 view)
//! ```
//!
//! * **Thread safety.** Workers share one immutable
//!   [`FrozenLayeredMonitor`] (`Arc`; per-class zones are
//!   `Arc<FrozenZone>` snapshots) — reads take no lock.  The only mutable
//!   state per worker is its own model replica (forward passes cache
//!   activations, hence `&mut`).
//! * **Multi-layer.** The engine always serves the layered family; an
//!   engine built from a single [`Monitor`] is the `N = 1` special case.
//!   One [`naps_core::batch::ObservationPlan`]-driven forward pass per
//!   micro-batch retains exactly the monitored layers' activations:
//!   every additional monitored layer costs per-class shard lookups,
//!   never another forward pass.
//! * **Live updates.** The served snapshot sits in a read-mostly publish
//!   slot; [`MonitorEngine::publish`] / [`MonitorEngine::publish_layered`]
//!   hot-swap an enriched replacement, workers adopt it at their next
//!   micro-batch boundary, and every verdict carries the epoch of the
//!   snapshot that judged it ([`EpochReport`] / [`LayeredEpochReport`]).
//! * **Batching.** A worker drains up to `max_batch` requests in one
//!   lock acquisition — its own queue first, then stealing from the
//!   most-loaded sibling — and runs **one** forward pass for the whole
//!   micro-batch.  Under load, batches grow toward `max_batch`
//!   automatically; when idle, a lone request is served immediately.
//! * **Backpressure.** Total queued requests are bounded by
//!   `queue_capacity`: [`MonitorEngine::submit`] blocks for space,
//!   [`MonitorEngine::try_submit`] returns
//!   [`SubmitError::Saturated`] instead.
//! * **Equivalence.** Every path funnels through the same
//!   `pack_batch` → `forward_observe_plan` → shard-lookup pipeline as
//!   the sequential [`naps_core::Monitor::check_batch`] /
//!   [`naps_core::LayeredMonitor::check_batch`], so verdicts are
//!   bit-identical to sequential checking regardless of how requests
//!   interleave (asserted by the crate's concurrency tests).
//!
//! [`FrozenZone`]: crate::FrozenZone

use crate::frozen::{FrozenLayeredMonitor, FrozenMonitor, LayeredVerdict};
use naps_core::{
    BddZone, DriftConfig, DriftDetector, DriftStatus, GradedQuery, GradedReport, LayeredMonitor,
    Monitor, MonitorReport, Verdict,
};
use naps_nn::{ModelSnapshot, Sequential, SnapshotError};
use naps_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use naps_sync::thread::JoinHandle;
use naps_sync::{mpsc, Arc, Condvar, Mutex};
use naps_tensor::Tensor;
use serde::Serialize;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

mod worker;
use worker::{worker_loop, WorkerGuard, WorkerModel};

/// Sizing knobs of a [`MonitorEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (and model replicas, and class shards).
    pub workers: usize,
    /// Largest micro-batch a worker packs into one forward pass.
    pub max_batch: usize,
    /// Bound on requests queued across all workers (backpressure).
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    /// Four workers, micro-batches of 16, 1024 queued requests.
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            max_batch: 16,
            queue_capacity: 1024,
        }
    }
}

/// Why an engine could not be constructed.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The model contains a layer [`ModelSnapshot`] cannot replicate
    /// (e.g. convolution); provide per-worker replicas via
    /// [`MonitorEngine::with_replicas`] instead.
    UnsupportedModel(SnapshotError),
    /// A sizing knob is zero.
    InvalidConfig(&'static str),
    /// `with_replicas` got a replica count different from
    /// [`EngineConfig::workers`].
    ReplicaCountMismatch {
        /// Configured worker count.
        expected: usize,
        /// Provided model replicas.
        actual: usize,
    },
    /// [`MonitorEngine::publish`] got a monitor that cannot replace the
    /// one being served (different layer family, neuron selections,
    /// combine policy or class count): its verdicts would not be
    /// comparable across epochs, and the worker model replicas would be
    /// observing the wrong layers.
    IncompatibleMonitor(&'static str),
    /// The OS refused to spawn a worker thread.  Construction fails as a
    /// whole: any workers already started are shut down and joined
    /// before this is returned, so nothing leaks.
    WorkerSpawn(std::io::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsupportedModel(e) => write!(f, "cannot replicate model: {e}"),
            EngineError::InvalidConfig(what) => write!(f, "invalid engine config: {what}"),
            EngineError::ReplicaCountMismatch { expected, actual } => {
                write!(f, "need {expected} model replicas, got {actual}")
            }
            EngineError::IncompatibleMonitor(what) => {
                write!(f, "published monitor incompatible with served one: {what}")
            }
            EngineError::WorkerSpawn(e) => write!(f, "cannot spawn engine worker: {e}"),
        }
    }
}

impl Error for EngineError {}

/// Why a request could not be accepted or answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The bounded queue is full ([`MonitorEngine::try_submit`] only —
    /// the blocking paths wait for space instead).
    Saturated,
    /// The engine is shutting down.
    ShutDown,
    /// A worker thread died (panicked) before answering — an engine
    /// bug or a poisoned model replica, not a monitoring verdict.  A
    /// ticket resolves with this error instead of hanging; once the
    /// **last** worker has died the engine marks itself failed, every
    /// still-queued request is resolved with this error, and new
    /// submissions are rejected with it too (a failed engine must
    /// answer, never block).
    WorkerLost,
    /// The input's width does not match the model's input dimension.
    /// Rejected at submission so one malformed request cannot panic a
    /// worker mid-batch (which would take unrelated co-batched requests
    /// — and the worker — down with it).
    WidthMismatch {
        /// The model's input dimension.
        expected: usize,
        /// The submitted tensor's length.
        actual: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated => write!(f, "engine queue is full"),
            SubmitError::ShutDown => write!(f, "engine is shut down"),
            SubmitError::WorkerLost => {
                write!(f, "engine worker died before answering the request")
            }
            SubmitError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "input width {actual} does not match model input {expected}"
                )
            }
        }
    }
}

impl Error for SubmitError {}

/// Counters accumulated over an engine's lifetime.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct EngineStats {
    /// Requests fully served.
    pub processed: u64,
    /// Micro-batches (forward passes) executed.
    pub batches: u64,
    /// Requests obtained by stealing from a sibling's queue.
    pub stolen: u64,
    /// Largest micro-batch packed into one forward pass.
    pub largest_batch: u64,
    /// Zone snapshots hot-swapped in via [`MonitorEngine::publish`].
    pub swaps: u64,
}

/// A [`MonitorReport`] stamped with the **epoch** of the zone snapshot
/// that produced it — the single-layer view of a verdict.
///
/// The engine hot-swaps enriched monitors while requests are in flight;
/// the stamp makes every verdict attributable to exactly one zone set —
/// a verdict with epoch `e` is bit-identical to what sequential checking
/// against the epoch-`e` monitor returns, no matter how the request
/// interleaved with the swap.
///
/// Internally every verdict is a [`LayeredEpochReport`]; this is its
/// [projection](LayeredEpochReport::to_single) onto the **primary**
/// (first) monitored layer — exact for the `N = 1` engines the
/// single-layer APIs are built for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochReport {
    /// Epoch of the monitor snapshot that judged the request.
    pub epoch: u64,
    /// The verdict itself.
    pub report: MonitorReport,
    /// The graded payload, for requests submitted through a graded API
    /// ([`MonitorEngine::check_graded`] /
    /// [`MonitorEngine::check_graded_batch`] /
    /// [`MonitorEngine::submit_graded`]): distance to the predicted
    /// class's zone plus the ranked nearest other-class zones, judged by
    /// the **same** snapshot as [`EpochReport::report`] (whose fields it
    /// embeds verbatim) and bit-identical to sequential
    /// [`Monitor::check_graded_batch`] at this epoch.  `None` for
    /// binary submissions — grading costs extra per-class distance
    /// queries, so it is opt-in per request.
    pub graded: Option<GradedReport>,
}

impl naps_core::MonitorOutcome for EpochReport {
    fn out_of_pattern(&self) -> bool {
        naps_core::MonitorOutcome::out_of_pattern(&self.report)
    }
}

/// A [`LayeredVerdict`] stamped with the epoch of the
/// [`FrozenLayeredMonitor`] that produced it, optionally carrying one
/// graded ranking per monitored layer — what every engine verdict
/// actually is; [`EpochReport`] is its single-layer projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeredEpochReport {
    /// Epoch of the layered snapshot that judged the request.
    pub epoch: u64,
    /// The network's decision.
    pub predicted: usize,
    /// One full report per monitored layer, in the family's construction
    /// order — bit-identical to sequential layered checking at this
    /// epoch.
    pub per_layer: Vec<MonitorReport>,
    /// The [`naps_core::CombinePolicy`]-combined verdict.
    pub combined: Verdict,
    /// One graded ranking per monitored layer for graded submissions
    /// (same order as [`LayeredEpochReport::per_layer`], whose entries
    /// the graded reports embed verbatim); `None` for binary
    /// submissions.
    pub graded: Option<Vec<GradedReport>>,
}

impl LayeredEpochReport {
    /// The single-layer view: the **primary** (first) layer's report and
    /// graded ranking under the combined verdict's epoch.  For an
    /// `N = 1` engine this is the whole verdict — the combined verdict
    /// *is* the lone layer's — so the projection is exact.
    // naps-lint: allow-fn(panic_freedom, "a LayeredEpochReport always carries one report and ranking per monitored layer, and the frozen family is validated non-empty")
    pub fn to_single(&self) -> EpochReport {
        EpochReport {
            epoch: self.epoch,
            report: self.per_layer[0].clone(),
            graded: self.graded.as_ref().map(|g| g[0].clone()),
        }
    }

    /// Consuming [`LayeredEpochReport::to_single`]: moves the primary
    /// layer's report and ranking out instead of cloning them — what the
    /// engine's single-layer API paths use per verdict.
    pub fn into_single(mut self) -> EpochReport {
        EpochReport {
            epoch: self.epoch,
            report: self.per_layer.swap_remove(0),
            graded: self.graded.map(|mut g| g.swap_remove(0)),
        }
    }
}

impl naps_core::MonitorOutcome for LayeredEpochReport {
    fn out_of_pattern(&self) -> bool {
        self.combined == Verdict::OutOfPattern
    }
}

type Callback = Box<dyn FnOnce(LayeredEpochReport) + Send + 'static>;

struct Request {
    input: Tensor,
    /// `Some` = the submitter asked for a graded verdict at this query.
    graded: Option<GradedQuery>,
    complete: Callback,
}

struct State {
    /// One FIFO per worker; submissions round-robin, owners pop the
    /// front, thieves pop the back.
    queues: Vec<VecDeque<Request>>,
    /// Total queued requests (bounded by `queue_capacity`).
    pending: usize,
    /// Round-robin submission cursor.
    next: usize,
    shutdown: bool,
    /// `true` once the **last** worker thread has died without an
    /// orderly shutdown: the queues can never drain again, so
    /// submissions are rejected with [`SubmitError::WorkerLost`]
    /// instead of queueing (or blocking) forever.
    failed: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers when requests arrive (or shutdown begins).
    work: Condvar,
    /// Wakes blocked submitters when queue space frees up.
    space: Condvar,
    max_batch: usize,
    queue_capacity: usize,
    /// The model's input dimension, when derivable (MLP-style stacks):
    /// submissions of any other width are rejected up front.
    input_len: Option<usize>,
    /// Worker threads still running.  When the count hits zero outside
    /// an orderly drain, the dying worker's [`WorkerGuard`] fails the
    /// engine so no ticket is ever left hanging.
    alive: AtomicUsize,
    /// The read-mostly publish slot: the monitor snapshot currently being
    /// served.  Workers hold their own `Arc` clone and only touch this
    /// mutex when [`Shared::epoch`] tells them a newer snapshot exists —
    /// the verdict hot path itself stays lock-free.
    published: Mutex<Arc<FrozenLayeredMonitor>>,
    /// Epoch of the snapshot in [`Shared::published`].  Workers poll this
    /// atomic (one relaxed-cost load) at every micro-batch boundary.
    epoch: AtomicU64,
    processed: AtomicU64,
    batches: AtomicU64,
    stolen: AtomicU64,
    largest_batch: AtomicUsize,
    swaps: AtomicU64,
    /// Drift tracking keyed by (layer, class), plus the combined view
    /// (`None` until [`MonitorEngine::enable_drift`]).  Workers fold each
    /// micro-batch's verdicts in under one short lock acquisition — off
    /// the lock-free verdict hot path, and skipped entirely while
    /// disabled.
    drift: Mutex<Option<DriftState>>,
}

/// Drift detectors — combined per class, plus one per (layer, class) —
/// and the epoch their evidence was gathered under.
struct DriftState {
    config: DriftConfig,
    /// Combined-verdict detectors, one per class (the deployment-level
    /// "is this class drifting" signal, fed the policy-combined verdict).
    combined: Vec<DriftDetector>,
    /// EWMA of the primary layer's `distance_to_seeds` per class (same
    /// smoothing factor as the rate EWMA) — the quantitative "how far
    /// out, on average" companion to the out-of-pattern-rate detectors.
    distance_ewma: Vec<Option<f64>>,
    /// `per_layer[l][c]`: detector of class `c` at layer slot `l`, fed
    /// that layer's own verdicts — drift can start at one abstraction
    /// level before it shows in the combined fold.
    per_layer: Vec<Vec<DriftDetector>>,
    /// Model layer index of each slot of [`DriftState::per_layer`].
    layer_indices: Vec<usize>,
    /// Epoch of the zone set the detectors gather evidence for.  Reset
    /// (with the detectors) on every publish; workers skip whole batches
    /// judged under any other epoch, so sustained rates under an old
    /// zone set are never folded in as evidence against a new one.
    epoch: u64,
}

impl DriftState {
    fn new(config: DriftConfig, layer_indices: Vec<usize>, num_classes: usize, epoch: u64) -> Self {
        DriftState {
            combined: (0..num_classes)
                .map(|_| DriftDetector::new(config.clone()))
                .collect(),
            distance_ewma: vec![None; num_classes],
            per_layer: layer_indices
                .iter()
                .map(|_| {
                    (0..num_classes)
                        .map(|_| DriftDetector::new(config.clone()))
                        .collect()
                })
                .collect(),
            layer_indices,
            config,
            epoch,
        }
    }

    fn rearmed(&self, epoch: u64) -> Self {
        DriftState::new(
            self.config.clone(),
            self.layer_indices.clone(),
            self.combined.len(),
            epoch,
        )
    }

    // naps-lint: allow-fn(panic_freedom, "class is range-checked on entry; combined, distance_ewma and every dets vec share len num_classes by construction, and per_layer is non-empty by family validation")
    fn observe(&mut self, verdict: &LayeredVerdict) {
        let class = verdict.predicted;
        if class >= self.combined.len() {
            return; // out-of-range prediction: no class to charge
        }
        self.combined[class].observe(verdict.combined);
        if let Some(d) = verdict.per_layer[0].distance_to_seeds {
            let alpha = self.config.ewma_alpha;
            let slot = &mut self.distance_ewma[class];
            *slot = Some(match *slot {
                None => f64::from(d),
                Some(e) => e + alpha * (f64::from(d) - e),
            });
        }
        for (dets, report) in self.per_layer.iter_mut().zip(&verdict.per_layer) {
            dets[class].observe(report.verdict);
        }
    }
}

/// One class's drift posture, epoch-stamped (see
/// [`MonitorEngine::drift_status`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDriftStatus {
    /// The class the evidence belongs to (verdicts are charged to the
    /// **predicted** class).
    pub class: usize,
    /// The persistence-filtered alarm state.
    pub status: DriftStatus,
    /// Epoch of the zone set the evidence was gathered under: drift
    /// flagged at epoch `e` indicts the epoch-`e` zones, and a
    /// subsequent enrich → publish starts the detectors fresh at the new
    /// epoch.
    pub epoch: u64,
    /// Out-of-pattern rate over the detector's sliding window.
    pub windowed_rate: f64,
    /// Exponentially weighted out-of-pattern rate.
    pub ewma_rate: f64,
    /// EWMA of the distance-to-seeds column (`None` before the first
    /// distance-carrying verdict): rising distance under a stable rate
    /// is early drift evidence.  Only tracked for the combined view
    /// (primary layer's distances); `None` in per-layer statuses.
    pub mean_distance: Option<f64>,
    /// Monitored verdicts folded in.
    pub observed: usize,
    /// Distinct alarm episodes since (re)arming.
    pub alarms: usize,
}

/// One monitored layer's per-class drift posture (see
/// [`MonitorEngine::drift_status_by_layer`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDriftStatus {
    /// The model layer index this slot's evidence belongs to.
    pub layer: usize,
    /// Per-class posture at this layer, ascending by class.
    pub classes: Vec<ClassDriftStatus>,
}

fn class_statuses(
    detectors: &[DriftDetector],
    distance_ewma: Option<&[Option<f64>]>,
    epoch: u64,
) -> Vec<ClassDriftStatus> {
    detectors
        .iter()
        .enumerate()
        .map(|(class, det)| ClassDriftStatus {
            class,
            status: det.status(),
            epoch,
            windowed_rate: det.windowed_rate(),
            ewma_rate: det.ewma_rate(),
            // naps-lint: allow(panic_freedom, "class enumerates the detector vec; distance_ewma has the same num_classes length by construction")
            mean_distance: distance_ewma.and_then(|d| d[class]),
            observed: det.observed(),
            alarms: det.alarm_count(),
        })
        .collect()
}

/// A handle to one in-flight single-layer-view submission; redeem with
/// [`VerdictTicket::wait`].
#[derive(Debug)]
pub struct VerdictTicket {
    rx: mpsc::Receiver<EpochReport>,
}

impl VerdictTicket {
    /// Blocks until the verdict is ready.
    ///
    /// # Errors
    ///
    /// [`SubmitError::WorkerLost`] when the serving worker died before
    /// answering (a worker panic — an engine bug, not a monitoring
    /// verdict).  Never panics and never hangs: a request the engine
    /// dropped resolves with the typed error.
    pub fn wait(self) -> Result<EpochReport, SubmitError> {
        self.rx.recv().map_err(|_| SubmitError::WorkerLost)
    }

    /// Returns `Ok(Some(..))` once the verdict is available, `Ok(None)`
    /// while the request is still queued or in flight.
    ///
    /// # Errors
    ///
    /// [`SubmitError::WorkerLost`] when the serving worker died before
    /// answering — the same typed failure as [`VerdictTicket::wait`],
    /// rather than reading as "not ready yet" forever.
    pub fn try_wait(&self) -> Result<Option<EpochReport>, SubmitError> {
        match self.rx.try_recv() {
            Ok(report) => Ok(Some(report)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(SubmitError::WorkerLost),
        }
    }
}

/// A handle to one in-flight layered submission; redeem with
/// [`LayeredVerdictTicket::wait`].
#[derive(Debug)]
pub struct LayeredVerdictTicket {
    rx: mpsc::Receiver<LayeredEpochReport>,
}

impl LayeredVerdictTicket {
    /// Blocks until the layered verdict is ready.
    ///
    /// # Errors
    ///
    /// As [`VerdictTicket::wait`].
    pub fn wait(self) -> Result<LayeredEpochReport, SubmitError> {
        self.rx.recv().map_err(|_| SubmitError::WorkerLost)
    }

    /// Returns `Ok(Some(..))` once the verdict is available, `Ok(None)`
    /// while the request is still queued or in flight.
    ///
    /// # Errors
    ///
    /// As [`VerdictTicket::try_wait`].
    pub fn try_wait(&self) -> Result<Option<LayeredEpochReport>, SubmitError> {
        match self.rx.try_recv() {
            Ok(report) => Ok(Some(report)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(SubmitError::WorkerLost),
        }
    }
}

/// A parallel monitoring service over a frozen (possibly multi-layer)
/// monitor.
///
/// See the [module docs](self) for the architecture.  Construct with
/// [`MonitorEngine::new`] / [`MonitorEngine::new_layered`] (replicates
/// the model via [`ModelSnapshot`]) or [`MonitorEngine::with_replicas`]
/// / [`MonitorEngine::with_layered_replicas`] (caller-supplied replicas,
/// e.g. for convolutional models), submit with
/// [`submit`](MonitorEngine::submit) /
/// [`submit_layered`](MonitorEngine::submit_layered) /
/// [`check_batch`](MonitorEngine::check_batch) /
/// [`check_layered_batch`](MonitorEngine::check_layered_batch), hot-swap
/// enriched zone snapshots with [`publish`](MonitorEngine::publish) /
/// [`publish_layered`](MonitorEngine::publish_layered), and stop with
/// [`shutdown`](MonitorEngine::shutdown) (or [`stop`](MonitorEngine::stop)
/// from a shared reference, or just drop it — remaining queued requests
/// are drained first in every case).
pub struct MonitorEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl MonitorEngine {
    /// Builds an engine over a single-layer `monitor` — the `N = 1`
    /// layered deployment — sharding its classes across `config.workers`
    /// shards and replicating `model` once per worker.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnsupportedModel`] when the model cannot be
    /// snapshot-replicated (use [`MonitorEngine::with_replicas`]), or
    /// [`EngineError::InvalidConfig`] on zero-sized knobs.
    pub fn new(
        monitor: &Monitor<BddZone>,
        model: &Sequential,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let snap = ModelSnapshot::capture(model).map_err(EngineError::UnsupportedModel)?;
        let replicas = (0..config.workers).map(|_| snap.restore()).collect();
        Self::with_layered_replicas(
            FrozenLayeredMonitor::from_single(FrozenMonitor::shard_by_class(
                monitor,
                config.workers.max(1),
            )),
            replicas,
            config,
        )
    }

    /// Builds an engine over a multi-layer `monitor`, sharding every
    /// layer's classes across `config.workers` shards and replicating
    /// `model` once per worker.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::new`].
    pub fn new_layered(
        monitor: &LayeredMonitor<BddZone>,
        model: &Sequential,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let snap = ModelSnapshot::capture(model).map_err(EngineError::UnsupportedModel)?;
        let replicas = (0..config.workers).map(|_| snap.restore()).collect();
        Self::with_layered_replicas(
            FrozenLayeredMonitor::shard_by_class(monitor, config.workers.max(1)),
            replicas,
            config,
        )
    }

    /// Builds an engine from an already-frozen single-layer monitor
    /// (lifted to the `N = 1` layered family) and caller-made model
    /// replicas (one per worker).
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::with_layered_replicas`].
    pub fn with_replicas(
        monitor: FrozenMonitor,
        replicas: Vec<Sequential>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::with_layered_replicas(FrozenLayeredMonitor::from_single(monitor), replicas, config)
    }

    /// Builds an engine from an already-frozen layered monitor and
    /// caller-made model replicas (one per worker).  The replicas must be
    /// behaviourally identical — verdict equivalence with sequential
    /// checking is only as good as the replication.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] on zero-sized knobs,
    /// [`EngineError::ReplicaCountMismatch`] when
    /// `replicas.len() != config.workers`.
    pub fn with_layered_replicas(
        monitor: FrozenLayeredMonitor,
        replicas: Vec<Sequential>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        if config.workers == 0 {
            return Err(EngineError::InvalidConfig("workers must be > 0"));
        }
        if config.max_batch == 0 {
            return Err(EngineError::InvalidConfig("max_batch must be > 0"));
        }
        if config.queue_capacity == 0 {
            return Err(EngineError::InvalidConfig("queue_capacity must be > 0"));
        }
        if replicas.len() != config.workers {
            return Err(EngineError::ReplicaCountMismatch {
                expected: config.workers,
                actual: replicas.len(),
            });
        }
        let initial_epoch = monitor.epoch();
        let input_len = replicas.first().and_then(model_input_len);
        // Pre-pack every replica's frozen weights now — construction is
        // the serving counterpart of zone compilation: the cold half
        // allocates once so the steady-state worker loop never packs or
        // allocates for weights (replicas the snapshot format cannot
        // express fall back to the live allocating path).
        let models: Vec<WorkerModel> = replicas
            .into_iter()
            .map(|m| WorkerModel::prepare(m, &monitor))
            .collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..config.workers).map(|_| VecDeque::new()).collect(),
                pending: 0,
                next: 0,
                shutdown: false,
                failed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            max_batch: config.max_batch,
            queue_capacity: config.queue_capacity,
            input_len,
            alive: AtomicUsize::new(config.workers),
            published: Mutex::new(Arc::new(monitor)),
            epoch: AtomicU64::new(initial_epoch),
            processed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
            swaps: AtomicU64::new(0),
            drift: Mutex::new(None),
        });
        let mut workers = Vec::with_capacity(config.workers);
        for (id, model) in models.into_iter().enumerate() {
            let worker_shared = Arc::clone(&shared);
            let spawned = naps_sync::thread::Builder::new()
                .name(format!("naps-serve-{id}"))
                .spawn(move || {
                    let _guard = WorkerGuard {
                        shared: Arc::clone(&worker_shared),
                    };
                    worker_loop(id, &worker_shared, model);
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Partial spawn: wind the already-started workers
                    // down and join them before reporting, so a failed
                    // construction leaks no thread.
                    {
                        let mut state = shared.state.lock().unwrap_or_else(|p| p.into_inner());
                        state.shutdown = true;
                    }
                    shared.work.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(EngineError::WorkerSpawn(e));
                }
            }
        }
        Ok(MonitorEngine { shared, workers })
    }

    /// The **primary** (first) layer of the monitor snapshot currently
    /// being served — the whole monitor for `N = 1` engines (the publish
    /// slot's content at the time of the call; a subsequent
    /// [`MonitorEngine::publish`] does not invalidate the returned `Arc`,
    /// it just stops serving from it).
    pub fn monitor(&self) -> Arc<FrozenMonitor> {
        Arc::clone(self.monitor_layered().primary())
    }

    /// The full layered monitor snapshot currently being served.
    pub fn monitor_layered(&self) -> Arc<FrozenLayeredMonitor> {
        Arc::clone(
            &self
                .shared
                .published
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        )
    }

    /// Epoch of the snapshot currently being served.
    pub fn epoch(&self) -> u64 {
        // ordering: acquire — pairs with the Release store in publish;
        // an observed epoch implies the slot already holds its snapshot.
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Hot-swaps a single-layer `monitor` in as the snapshot to serve —
    /// the `N = 1` form of [`MonitorEngine::publish_layered`], for
    /// engines built from a single [`Monitor`].  Returns the epoch
    /// stamped onto it (previous epoch + 1).
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::publish_layered`].
    pub fn publish(&self, monitor: FrozenMonitor) -> Result<u64, EngineError> {
        self.publish_layered(FrozenLayeredMonitor::from_single(monitor))
    }

    /// Hot-swaps `monitor` in as the layered snapshot to serve, returning
    /// the epoch stamped onto it (previous epoch + 1).
    ///
    /// The swap is **non-disruptive and exact**: no request is lost,
    /// rejected or re-run.  Workers pick the new snapshot up at their
    /// next micro-batch boundary — each in-flight micro-batch finishes
    /// wholly under the snapshot it started with, and every verdict
    /// carries the epoch of the snapshot that judged it
    /// ([`LayeredEpochReport`]), so "which zone set said this?" is always
    /// answerable.  Publishing never blocks the verdict hot path; the
    /// slot mutex is touched by workers only on an epoch change.
    ///
    /// # Errors
    ///
    /// [`EngineError::IncompatibleMonitor`] when `monitor` has a
    /// different layer count, watches different layers or neuron
    /// selections, folds with a different combine policy, or has a
    /// different class count than the snapshot being replaced — swapping
    /// it in would make cross-epoch verdicts incomparable.  The engine
    /// keeps serving the old snapshot.
    pub fn publish_layered(&self, mut monitor: FrozenLayeredMonitor) -> Result<u64, EngineError> {
        let mut slot = self
            .shared
            .published
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if monitor.num_layers() != slot.num_layers() {
            return Err(EngineError::IncompatibleMonitor("layer count differs"));
        }
        if monitor.policy() != slot.policy() {
            return Err(EngineError::IncompatibleMonitor("combine policy differs"));
        }
        if monitor.num_classes() != slot.num_classes() {
            return Err(EngineError::IncompatibleMonitor("class count differs"));
        }
        for (new, old) in monitor.layers().iter().zip(slot.layers()) {
            if new.layer() != old.layer() {
                return Err(EngineError::IncompatibleMonitor("monitored layer differs"));
            }
            if new.selection() != old.selection() {
                return Err(EngineError::IncompatibleMonitor("neuron selection differs"));
            }
        }
        // ordering: acquire — epoch reads pair with the Release store
        // below; publishers serialize on the slot mutex held here.
        let epoch = self.shared.epoch.load(Ordering::Acquire) + 1;
        monitor.set_epoch(epoch);
        *slot = Arc::new(monitor);
        // ordering: release — publish the new epoch only after the slot
        // holds the snapshot (workers re-read the slot under its mutex
        // when they see the epoch move, so they can never pair the old
        // snapshot with the new stamp).
        self.shared.epoch.store(epoch, Ordering::Release);
        drop(slot);
        // ordering: relaxed — monotone stat counter
        self.shared.swaps.fetch_add(1, Ordering::Relaxed);
        // Re-arm drift tracking for the new zone set: sustained
        // out-of-pattern rates measured under the replaced epoch are not
        // evidence against the zones that just went live.
        let mut drift = self.shared.drift.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(state) = drift.as_mut() {
            *state = state.rearmed(epoch);
        }
        Ok(epoch)
    }

    /// Arms drift tracking: from now on every verdict the engine produces
    /// feeds a [`DriftDetector`] per **(layer, class)** — verdicts are
    /// charged to the predicted class, at each monitored layer
    /// separately — plus a combined-verdict detector per class and a
    /// distance-to-seeds EWMA, so a sustained out-of-pattern elevation
    /// on any class surfaces as an epoch-stamped
    /// [`DriftStatus::Drifting`] in [`MonitorEngine::drift_status`] (or,
    /// per abstraction level, [`MonitorEngine::drift_status_by_layer`])
    /// — the trigger for the enrich → re-freeze →
    /// [`MonitorEngine::publish`] loop, which re-arms the detectors at
    /// the new epoch automatically.
    ///
    /// Detectors live off the verdict hot path: workers fold a whole
    /// micro-batch in under one short lock.  Calling this again replaces
    /// any existing tracking state (fresh detectors, current epoch).
    pub fn enable_drift(&self, config: DriftConfig) {
        let monitor = self.monitor_layered();
        let layer_indices: Vec<usize> = monitor.layers().iter().map(|m| m.layer()).collect();
        let num_classes = monitor.num_classes();
        let epoch = self.epoch();
        let mut drift = self.shared.drift.lock().unwrap_or_else(|e| e.into_inner());
        *drift = Some(DriftState::new(config, layer_indices, num_classes, epoch));
    }

    /// The per-class drift posture of the **combined** verdicts, `None`
    /// unless [`MonitorEngine::enable_drift`] armed tracking.  Classes
    /// are reported in ascending order; each entry is stamped with the
    /// epoch its evidence was gathered under.  For an `N = 1` engine the
    /// combined verdict is the lone layer's verdict, so this is exactly
    /// the single-layer drift signal.
    pub fn drift_status(&self) -> Option<Vec<ClassDriftStatus>> {
        let drift = self.shared.drift.lock().unwrap_or_else(|e| e.into_inner());
        drift
            .as_ref()
            .map(|state| class_statuses(&state.combined, Some(&state.distance_ewma), state.epoch))
    }

    /// The drift posture keyed by (layer, class): one
    /// [`LayerDriftStatus`] per monitored layer (family order), each with
    /// per-class detectors fed that layer's **own** verdicts.  `None`
    /// unless tracking is armed.  Drift at one abstraction level — e.g.
    /// an early layer seeing novel textures while the deep layer still
    /// folds in-pattern — shows here before the combined view alarms.
    pub fn drift_status_by_layer(&self) -> Option<Vec<LayerDriftStatus>> {
        let drift = self.shared.drift.lock().unwrap_or_else(|e| e.into_inner());
        drift.as_ref().map(|state| {
            state
                .per_layer
                .iter()
                .zip(&state.layer_indices)
                .map(|(dets, &layer)| LayerDriftStatus {
                    layer,
                    classes: class_statuses(dets, None, state.epoch),
                })
                .collect()
        })
    }

    /// Clears drift evidence while keeping tracking armed (e.g. after an
    /// operator acknowledges an alarm without republishing).  No-op when
    /// tracking was never enabled.
    pub fn reset_drift(&self) {
        let epoch = self.epoch();
        let mut drift = self.shared.drift.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(state) = drift.as_mut() {
            *state = state.rearmed(epoch);
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queues `input` and invokes `complete` with the single-layer-view
    /// verdict on a worker thread — the callback-style API for event
    /// loops that must not block.  Blocks only while the bounded queue is
    /// full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WidthMismatch`] when the input width is wrong for
    /// the model.
    pub fn submit_with<F>(&self, input: Tensor, complete: F) -> Result<(), SubmitError>
    where
        F: FnOnce(EpochReport) + Send + 'static,
    {
        self.enqueue(
            input,
            None,
            Box::new(move |report| complete(report.into_single())),
            true,
        )
    }

    /// Layered [`MonitorEngine::submit_with`]: the callback receives the
    /// full [`LayeredEpochReport`].
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::submit_with`].
    pub fn submit_layered_with<F>(&self, input: Tensor, complete: F) -> Result<(), SubmitError>
    where
        F: FnOnce(LayeredEpochReport) + Send + 'static,
    {
        self.enqueue(input, None, Box::new(complete), true)
    }

    /// Graded [`MonitorEngine::submit_with`]: the verdict arrives with
    /// [`EpochReport::graded`] populated at `query`.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::submit_with`].
    pub fn submit_graded_with<F>(
        &self,
        input: Tensor,
        query: GradedQuery,
        complete: F,
    ) -> Result<(), SubmitError>
    where
        F: FnOnce(EpochReport) + Send + 'static,
    {
        self.enqueue(
            input,
            Some(query),
            Box::new(move |report| complete(report.into_single())),
            true,
        )
    }

    /// Graded [`MonitorEngine::submit`]: queues `input` for a verdict
    /// with the graded payload ([`EpochReport::graded`]) computed at
    /// `query` by the same snapshot that judges the binary verdict.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::submit`].
    pub fn submit_graded(
        &self,
        input: Tensor,
        query: GradedQuery,
    ) -> Result<VerdictTicket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            input,
            Some(query),
            Box::new(move |report| {
                let _ = tx.send(report.into_single());
            }),
            true,
        )?;
        Ok(VerdictTicket { rx })
    }

    /// Queues `input`, blocking while the queue is full, and returns a
    /// ticket to wait on for the single-layer-view verdict.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WidthMismatch`] when the input width is wrong for
    /// the model.
    pub fn submit(&self, input: Tensor) -> Result<VerdictTicket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            input,
            None,
            Box::new(move |report| {
                let _ = tx.send(report.into_single());
            }),
            true,
        )?;
        Ok(VerdictTicket { rx })
    }

    /// Layered [`MonitorEngine::submit`]: the ticket resolves to the full
    /// [`LayeredEpochReport`].  Pass `query` to also compute the
    /// per-layer graded rankings.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::submit`].
    pub fn submit_layered(
        &self,
        input: Tensor,
        query: Option<GradedQuery>,
    ) -> Result<LayeredVerdictTicket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            input,
            query,
            Box::new(move |report| {
                let _ = tx.send(report);
            }),
            true,
        )?;
        Ok(LayeredVerdictTicket { rx })
    }

    /// Non-blocking [`MonitorEngine::submit`]: fails with
    /// [`SubmitError::Saturated`] instead of waiting for queue space.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the queue is full,
    /// [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WidthMismatch`] when the input width is wrong for
    /// the model.
    pub fn try_submit(&self, input: Tensor) -> Result<VerdictTicket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            input,
            None,
            Box::new(move |report| {
                let _ = tx.send(report.into_single());
            }),
            false,
        )?;
        Ok(VerdictTicket { rx })
    }

    /// Checks one input synchronously through the pool (single-layer
    /// view).
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WidthMismatch`] on a wrong-width input.  Never
    /// panics and never deadlocks: a shut-down engine answers with an
    /// error, not a hang.
    pub fn check(&self, input: &Tensor) -> Result<EpochReport, SubmitError> {
        self.submit(input.clone())?.wait()
    }

    /// Checks one input synchronously through the pool, returning the
    /// full per-layer verdict.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::check`].
    pub fn check_layered(&self, input: &Tensor) -> Result<LayeredEpochReport, SubmitError> {
        self.submit_layered(input.clone(), None)?.wait()
    }

    /// Graded [`MonitorEngine::check`]: the returned report carries the
    /// graded payload at `query`.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::check`].
    pub fn check_graded(
        &self,
        input: &Tensor,
        query: GradedQuery,
    ) -> Result<EpochReport, SubmitError> {
        self.submit_graded(input.clone(), query)?.wait()
    }

    /// Graded [`MonitorEngine::check_layered`]: the returned report
    /// carries one graded ranking per monitored layer at `query`.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::check`].
    pub fn check_layered_graded(
        &self,
        input: &Tensor,
        query: GradedQuery,
    ) -> Result<LayeredEpochReport, SubmitError> {
        self.submit_layered(input.clone(), Some(query))?.wait()
    }

    /// Checks a batch synchronously, preserving input order (single-layer
    /// view).  The batch is fanned out across the pool as individual
    /// requests, so workers micro-batch and steal freely; results are
    /// reassembled by index.
    ///
    /// Submission is **all-or-nothing**: every input's width is
    /// validated before anything is queued, so a malformed input at any
    /// index means no request is enqueued and no verdict is computed
    /// only to be thrown away.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WidthMismatch`] when an input width is wrong for
    /// the model (nothing submitted).  A shutdown racing the submission
    /// loop can still cut a batch short — requests queued before the
    /// error are drained and their verdicts discarded.  The call never
    /// panics or deadlocks.
    pub fn check_batch(&self, inputs: &[Tensor]) -> Result<Vec<EpochReport>, SubmitError> {
        Ok(self
            .check_batch_inner(inputs, None)?
            .into_iter()
            .map(LayeredEpochReport::into_single)
            .collect())
    }

    /// Layered [`MonitorEngine::check_batch`]: order-preserving,
    /// all-or-nothing, one full [`LayeredEpochReport`] per input.
    /// Element `i` is bit-identical to sequential
    /// [`LayeredMonitor::check_batch`] under the snapshot of the epoch
    /// stamped on it.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::check_batch`].
    pub fn check_layered_batch(
        &self,
        inputs: &[Tensor],
    ) -> Result<Vec<LayeredEpochReport>, SubmitError> {
        self.check_batch_inner(inputs, None)
    }

    /// Graded [`MonitorEngine::check_batch`]: every report carries the
    /// graded payload at `query`, order-preserving and all-or-nothing
    /// like the binary path.  Element `i` is bit-identical to sequential
    /// [`Monitor::check_graded_batch`] under the snapshot of the epoch
    /// stamped on it.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::check_batch`].
    pub fn check_graded_batch(
        &self,
        inputs: &[Tensor],
        query: GradedQuery,
    ) -> Result<Vec<EpochReport>, SubmitError> {
        Ok(self
            .check_batch_inner(inputs, Some(query))?
            .into_iter()
            .map(LayeredEpochReport::into_single)
            .collect())
    }

    /// Graded [`MonitorEngine::check_layered_batch`]: every report
    /// carries one graded ranking per monitored layer at `query`.
    ///
    /// # Errors
    ///
    /// As [`MonitorEngine::check_batch`].
    pub fn check_layered_graded_batch(
        &self,
        inputs: &[Tensor],
        query: GradedQuery,
    ) -> Result<Vec<LayeredEpochReport>, SubmitError> {
        self.check_batch_inner(inputs, Some(query))
    }

    fn check_batch_inner(
        &self,
        inputs: &[Tensor],
        query: Option<GradedQuery>,
    ) -> Result<Vec<LayeredEpochReport>, SubmitError> {
        // Validate the whole batch up front: a width error at index k
        // must not leave k requests in flight whose verdicts nobody will
        // read.
        for input in inputs {
            self.validate_width(input)?;
        }
        let (tx, rx) = mpsc::channel();
        for (i, input) in inputs.iter().enumerate() {
            let tx = tx.clone();
            self.enqueue(
                input.clone(),
                query,
                Box::new(move |report| {
                    let _ = tx.send((i, report));
                }),
                true,
            )?;
        }
        drop(tx);
        let mut out: Vec<Option<LayeredEpochReport>> = vec![None; inputs.len()];
        for (i, report) in rx {
            // `i` enumerated `inputs`; `get_mut` rather than trusting it.
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(report);
            }
        }
        // A missing slot means a worker died with that request in hand
        // (its callback was dropped unanswered) — a typed error, never a
        // panic on the serving surface.
        out.into_iter()
            .map(|r| r.ok_or(SubmitError::WorkerLost))
            .collect()
    }

    /// Requests currently queued (accepted but not yet picked up by a
    /// worker) — the live backpressure gauge, bounded by
    /// [`EngineConfig::queue_capacity`].  A point-in-time snapshot: the
    /// value can change the moment the lock is released.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending
    }

    /// Non-blocking layered callback submission — the composition of
    /// [`MonitorEngine::try_submit`] (typed [`SubmitError::Saturated`]
    /// instead of blocking on a full queue) and
    /// [`MonitorEngine::submit_layered_with`] (callback instead of
    /// ticket), with an optional graded `query`.  This is the surface a
    /// network front-end wants: a reader thread must never block on the
    /// engine's queue, and the verdict is written back from the worker
    /// thread without parking anything in between.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the queue is full (shed the
    /// request), [`SubmitError::ShutDown`] after shutdown began,
    /// [`SubmitError::WorkerLost`] on a failed engine,
    /// [`SubmitError::WidthMismatch`] on a wrong-width input.  When an
    /// error is returned, `complete` is dropped uninvoked.
    pub fn try_submit_layered_with<F>(
        &self,
        input: Tensor,
        query: Option<GradedQuery>,
        complete: F,
    ) -> Result<(), SubmitError>
    where
        F: FnOnce(LayeredEpochReport) + Send + 'static,
    {
        self.enqueue(input, query, Box::new(complete), false)
    }

    /// Lifetime counters (throughput, batching, stealing and swap
    /// behaviour).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            // ordering: relaxed — advisory snapshot of monotone counters;
            // no cross-counter consistency is promised (all loads below).
            processed: self.shared.processed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed), // ordering: relaxed snapshot
            stolen: self.shared.stolen.load(Ordering::Relaxed),   // ordering: relaxed snapshot
            largest_batch: self.shared.largest_batch.load(Ordering::Relaxed) as u64, // ordering: relaxed snapshot
            swaps: self.shared.swaps.load(Ordering::Relaxed), // ordering: relaxed snapshot
        }
    }

    /// Begins a graceful shutdown from a shared reference: new
    /// submissions fail with [`SubmitError::ShutDown`] (including blocked
    /// ones — they are woken and answered with the error, never left
    /// hanging), while already-queued requests are still drained and
    /// answered.  Idempotent.  Unlike [`MonitorEngine::shutdown`] this
    /// does not join the workers; dropping the engine does.
    pub fn stop(&self) {
        self.begin_shutdown();
    }

    /// Stops accepting submissions, drains the queues, joins the
    /// workers and returns the final counters.
    ///
    /// **Drain guarantee** (regression-tested by
    /// `tests/worker_loss.rs`): every request accepted before shutdown
    /// began is either judged (its ticket resolves `Ok`) or — if a
    /// worker died with it in hand, or the last worker died with it
    /// still queued — resolved with [`SubmitError::WorkerLost`].  No
    /// ticket is ever left hanging.
    pub fn shutdown(mut self) -> EngineStats {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    /// Rejects an input whose width the model cannot take, when the
    /// model's input dimension is derivable (see [`Shared::input_len`]).
    fn validate_width(&self, input: &Tensor) -> Result<(), SubmitError> {
        if let Some(expected) = self.shared.input_len {
            if input.len() != expected {
                return Err(SubmitError::WidthMismatch {
                    expected,
                    actual: input.len(),
                });
            }
        }
        Ok(())
    }

    fn enqueue(
        &self,
        input: Tensor,
        graded: Option<GradedQuery>,
        complete: Callback,
        block: bool,
    ) -> Result<(), SubmitError> {
        self.validate_width(&input)?;
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.failed {
                return Err(SubmitError::WorkerLost);
            }
            if state.shutdown {
                return Err(SubmitError::ShutDown);
            }
            if state.pending < self.shared.queue_capacity {
                break;
            }
            if !block {
                return Err(SubmitError::Saturated);
            }
            state = self
                .shared
                .space
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        let slot = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        // naps-lint: allow(panic_freedom, "slot is taken modulo queues.len(), which is fixed and non-zero since construction")
        state.queues[slot].push_back(Request {
            input,
            graded,
            complete,
        });
        state.pending += 1;
        drop(state);
        // Any worker may serve it: idle workers steal from `slot`.
        self.shared.work.notify_one();
        Ok(())
    }
}

impl Drop for MonitorEngine {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Input width of an MLP-style model, when derivable: walks leading
/// width-preserving layers (ReLU / leaky ReLU / dropout / flatten) to
/// the first fully-connected layer and reads its weight matrix's input
/// dimension.  Returns `None` for geometries this cannot see through
/// (convolution, pooling, batch norm) — those engines skip submission
/// validation and rely on the caller, as the sequential API does.
fn model_input_len(model: &Sequential) -> Option<usize> {
    use naps_nn::{Dense, Dropout, Flatten, LeakyRelu, Relu};
    for i in 0..model.len() {
        let layer = model.layer(i);
        let any = layer.as_any();
        if let Some(dense) = any.downcast_ref::<Dense>() {
            // naps-lint: allow(panic_freedom, "Dense weights are always a 2-D tensor; shape() has two entries")
            return Some(dense.weights().shape()[0]);
        }
        if any.downcast_ref::<Flatten>().is_some() {
            // Flatten is width-preserving: its feature count is the
            // model's input width.
            return Some(layer.output_len());
        }
        let width_preserving = any.downcast_ref::<Relu>().is_some()
            || any.downcast_ref::<LeakyRelu>().is_some()
            || any.downcast_ref::<Dropout>().is_some();
        if !width_preserving {
            return None;
        }
    }
    None
}

/// Pops a micro-batch for worker `id`: own queue first (FIFO), then
/// back-stealing from the most-loaded sibling.  Returns `None` to shut
/// down.  Blocks on the `work` condvar while idle.
// naps-lint: allow-fn(panic_freedom, "worker ids are 0..workers and victim slots are taken modulo queues.len(); the queue vec's length equals the worker count and is fixed at construction")
fn next_batch(id: usize, shared: &Shared) -> Option<Vec<Request>> {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if state.pending > 0 {
            let mut batch = Vec::new();
            while batch.len() < shared.max_batch {
                match state.queues[id].pop_front() {
                    Some(r) => batch.push(r),
                    None => break,
                }
            }
            let mut stolen = 0u64;
            while batch.len() < shared.max_batch {
                let victim = (0..state.queues.len())
                    .filter(|&q| q != id && !state.queues[q].is_empty())
                    .max_by_key(|&q| state.queues[q].len());
                let Some(victim) = victim else { break };
                // Take up to half the victim's backlog (at least one),
                // from the back — the owner keeps draining the front.
                let take = state.queues[victim]
                    .len()
                    .div_ceil(2)
                    .min(shared.max_batch - batch.len());
                let before = batch.len();
                for _ in 0..take {
                    // `take` ≤ the victim's length, both read under the
                    // state lock — but steal what is actually there
                    // rather than assert it.
                    match state.queues[victim].pop_back() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                stolen += (batch.len() - before) as u64;
            }
            if !batch.is_empty() {
                state.pending -= batch.len();
                drop(state);
                shared.space.notify_all();
                // ordering: relaxed — stat counters; queue state is
                // consistent under the state mutex released above.
                shared.stolen.fetch_add(stolen, Ordering::Relaxed);
                shared.batches.fetch_add(1, Ordering::Relaxed); // ordering: relaxed stat counter
                shared
                    .largest_batch
                    // ordering: relaxed — stat high-water mark
                    .fetch_max(batch.len(), Ordering::Relaxed);
                return Some(batch);
            }
        }
        if state.shutdown {
            // Queues are empty (pending == 0 or this worker saw nothing
            // poppable) and no more submissions can arrive: done.
            return None;
        }
        state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
    }
}

// `WorkerGuard`, `WorkerModel`, and `worker_loop` — the per-thread
// serving half of the engine — live in the `worker` child module so the
// analyzer can deny-list the steady-state request path as a file.
