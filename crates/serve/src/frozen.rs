//! Frozen, class-sharded monitors: the immutable data the engine serves.
//!
//! A live [`Monitor`] owns a BDD manager per zone; managers are mutable
//! (hash-consing tables, operation caches) and so cannot be queried from
//! several threads without locks.  Freezing captures each class's
//! **enlarged** comfort zone and its seed set as [`BddSnapshot`]s — plain
//! node arrays with no caches — behind `Arc`s.  Membership becomes a
//! root-to-terminal walk ([`BddSnapshot::eval`]) and distance-to-seeds a
//! bottom-up sweep ([`BddSnapshot::min_hamming_distance`]); both take
//! `&self`, touch nothing mutable, and are therefore lock-free on the
//! serving hot path.
//!
//! [`FrozenMonitor::shard_by_class`] splits the classes round-robin into
//! disjoint [`MonitorShard`]s.  Shards hold `Arc`s onto the same frozen
//! zones — sharding costs no memory — and give each engine worker (or
//! each node of a distributed deployment) ownership of a disjoint class
//! subset while any worker can still resolve any predicted class.

use naps_bdd::{BddError, BddSnapshot, CompiledZone};
use naps_core::batch::{
    forward_observe_plan, observe_layered_batch, pack_batch, ObservationPlan, ObservedBatch,
    PreparedModel,
};
use naps_core::graded::grade;
use naps_core::prepared::PreparedObserver;
use naps_core::{
    BddZone, CombinePolicy, GradedQuery, GradedReport, LayeredMonitor, Monitor, MonitorError,
    MonitorReport, NearestZone, NeuronSelection, Pattern, Verdict,
};
use naps_nn::Sequential;
use naps_sync::Arc;
use naps_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::Path;
use std::{fs, io};

/// One class's comfort zone, frozen for lock-free concurrent queries.
///
/// Freezing (and loading) **compiles** each snapshot into a
/// [`CompiledZone`] — the flat/bit-sliced/small-zone evaluators of
/// `naps-bdd` — and every serving query runs on the compiled form.  The
/// snapshots stay the ground truth: they are what persists (see
/// [`FrozenMonitor::save`]; compiled evaluators are derived, never
/// serialized), and the `*_walked` methods run the original
/// interpreted queries as the oracle the compiled path is pinned
/// bit-identical to.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenZone {
    zone: BddSnapshot,
    seeds: BddSnapshot,
    gamma: u32,
    /// Compiled form of `zone` (derived at construction).
    zone_eval: CompiledZone,
    /// Compiled form of `seeds` (derived at construction).
    seed_eval: CompiledZone,
}

impl FrozenZone {
    /// Captures the enlarged zone and seed set of a live [`BddZone`],
    /// compiling both for serving.
    pub fn freeze(zone: &BddZone) -> Self {
        use naps_core::Zone;
        Self::from_snapshots(zone.zone_snapshot(), zone.seed_snapshot(), zone.gamma())
    }

    /// Assembles a frozen zone from already-captured snapshots, running
    /// the compile step.  Compilation is deterministic, so two calls on
    /// equal snapshots produce `==` zones — the invariant that lets
    /// persistence store snapshots only.
    fn from_snapshots(zone: BddSnapshot, seeds: BddSnapshot, gamma: u32) -> Self {
        let zone_eval = CompiledZone::compile(&zone);
        let seed_eval = CompiledZone::compile(&seeds);
        FrozenZone {
            zone,
            seeds,
            gamma,
            zone_eval,
            seed_eval,
        }
    }

    /// Pattern width (number of monitored neurons).
    pub fn width(&self) -> usize {
        self.zone.num_vars()
    }

    /// The Hamming radius the zone was enlarged to when frozen.
    pub fn gamma(&self) -> u32 {
        self.gamma
    }

    /// Membership in `Z^γ_c` — the compiled evaluator over the pattern's
    /// packed words (no unpacking), bit-identical to
    /// [`naps_core::Zone::contains`] on the source zone and to
    /// [`FrozenZone::contains_walked`].
    pub fn contains(&self, pattern: &Pattern) -> bool {
        self.zone_eval.eval_words(pattern.words())
    }

    /// Minimum Hamming distance to the seed set `Z^0_c`, `None` when no
    /// pattern was ever inserted — bit-identical to
    /// [`naps_core::Zone::distance_to_seeds`].  Seed sets are small, so
    /// this is almost always a popcount scan over the enumerated seeds.
    pub fn distance_to_seeds(&self, pattern: &Pattern) -> Option<u32> {
        self.seed_eval.min_hamming_distance_words(pattern.words())
    }

    /// Minimum Hamming distance to the **enlarged** zone `Z^γ_c`
    /// (`Some(0)` ⇔ [`FrozenZone::contains`]), `None` for an empty zone
    /// — the unbounded sweep on the compiled structure, kept as the
    /// reference the bounded query is benchmarked and verified against.
    pub fn distance_to_zone(&self, pattern: &Pattern) -> Option<u32> {
        self.zone_eval.min_hamming_distance_words(pattern.words())
    }

    /// Budget-bounded [`FrozenZone::distance_to_zone`]: `None` when the
    /// zone is empty **or** further than `budget`.  Runs the early-exit
    /// DP lowered onto the compiled node array
    /// ([`CompiledZone::min_hamming_distance_within_words`]), so in-zone
    /// patterns cost one walk and far patterns prune without sweeping
    /// the node array — bit-identical to
    /// [`naps_core::Zone::distance_to_zone_within`] on the source zone.
    pub fn distance_to_zone_within(&self, pattern: &Pattern, budget: u32) -> Option<u32> {
        self.zone_eval
            .min_hamming_distance_within_words(pattern.words(), budget)
    }

    /// [`FrozenZone::contains`] on the walked snapshot — the interpreted
    /// oracle the compiled path is verified against.
    pub fn contains_walked(&self, pattern: &Pattern) -> bool {
        self.zone.eval(&pattern.to_bools())
    }

    /// [`FrozenZone::distance_to_seeds`] on the walked snapshot.
    pub fn distance_to_seeds_walked(&self, pattern: &Pattern) -> Option<u32> {
        self.seeds.min_hamming_distance(&pattern.to_bools())
    }

    /// [`FrozenZone::distance_to_zone`] on the walked snapshot.
    pub fn distance_to_zone_walked(&self, pattern: &Pattern) -> Option<u32> {
        self.zone.min_hamming_distance(&pattern.to_bools())
    }

    /// [`FrozenZone::distance_to_zone_within`] on the walked snapshot.
    pub fn distance_to_zone_within_walked(&self, pattern: &Pattern, budget: u32) -> Option<u32> {
        self.zone
            .min_hamming_distance_within(&pattern.to_bools(), budget)
    }

    /// The compiled evaluator of the enlarged zone.
    pub fn zone_eval(&self) -> &CompiledZone {
        &self.zone_eval
    }

    /// The compiled evaluator of the seed set.
    pub fn seed_eval(&self) -> &CompiledZone {
        &self.seed_eval
    }

    /// The walked snapshot of the enlarged zone (the compiled
    /// evaluator's ground truth).
    pub fn zone_snapshot(&self) -> &BddSnapshot {
        &self.zone
    }

    /// The walked snapshot of the seed set.
    pub fn seed_snapshot(&self) -> &BddSnapshot {
        &self.seeds
    }

    /// Decision-node count of the frozen (enlarged) zone.
    pub fn node_count(&self) -> usize {
        self.zone.node_count()
    }

    /// The on-disk record: snapshots and γ only — compiled evaluators
    /// are rebuilt on load, never serialized.
    fn to_persisted(&self) -> PersistedZone {
        PersistedZone {
            zone: self.zone.clone(),
            seeds: self.seeds.clone(),
            gamma: self.gamma,
        }
    }
}

/// On-disk shape of a [`FrozenZone`]: the two snapshots plus γ, in the
/// exact field layout frozen zones serialized as before evaluators were
/// compiled — old files keep loading, and new files are byte-identical
/// to what the pre-compiled code wrote.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PersistedZone {
    zone: BddSnapshot,
    seeds: BddSnapshot,
    gamma: u32,
}

impl PersistedZone {
    /// Recompiles the persisted snapshots into a serving zone.  Callers
    /// must have validated the snapshots first ([`BddSnapshot::validate`])
    /// — the compiled evaluators index them unchecked.
    fn into_frozen(self) -> FrozenZone {
        FrozenZone::from_snapshots(self.zone, self.seeds, self.gamma)
    }
}

/// A disjoint class subset of a [`FrozenMonitor`].
///
/// Shard `i` of `n` owns every class `c` with `c % n == i`.  The zones
/// are shared (`Arc`) with the parent monitor and its other shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorShard {
    index: usize,
    num_shards: usize,
    /// Slot `s` holds class `s * num_shards + index`.
    zones: Vec<Option<Arc<FrozenZone>>>,
    num_classes: usize,
}

impl MonitorShard {
    /// Which shard (of `num_shards`) this is.
    pub fn index(&self) -> usize {
        self.index
    }

    /// `true` when this shard owns `class`.
    pub fn owns(&self, class: usize) -> bool {
        class < self.num_classes && class % self.num_shards == self.index
    }

    /// The classes this shard owns, in ascending order.
    ///
    /// Filtered against the monitor's class count: the slot formula
    /// alone would let a tail shard with a padded `zones` vec report a
    /// phantom class `>= num_classes` that [`MonitorShard::owns`]
    /// disclaims (and [`MonitorShard::zone`] would panic on).
    pub fn classes(&self) -> Vec<usize> {
        (0..self.zones.len())
            .map(|s| s * self.num_shards + self.index)
            .filter(|&c| c < self.num_classes)
            .collect()
    }

    /// Bounded distances from `pattern` to every **monitored** zone this
    /// shard owns: one [`NearestZone`] per owned class whose enlarged
    /// zone lies within `budget`, in ascending class order (unranked —
    /// the caller merges shards and sorts).  This is the shard-local
    /// piece of a graded query: each shard resolves its own classes, so
    /// a distributed deployment can fan the ranking out shard-per-node.
    pub fn nearest_within(&self, pattern: &Pattern, budget: u32) -> Vec<NearestZone> {
        self.classes()
            .into_iter()
            .filter_map(|class| {
                let distance = self.zone(class)?.distance_to_zone_within(pattern, budget)?;
                Some(NearestZone { class, distance })
            })
            .collect()
    }

    /// The frozen zone of `class`, `None` when the class is unmonitored.
    ///
    /// # Panics
    ///
    /// Panics if this shard does not own `class` — routing a query to the
    /// wrong shard is a bug in the caller, not a monitoring verdict.
    pub fn zone(&self, class: usize) -> Option<&FrozenZone> {
        assert!(
            self.owns(class),
            "shard {}/{} does not own class {class}",
            self.index,
            self.num_shards
        );
        self.zones[class / self.num_shards].as_deref()
    }

    /// Judges an already-extracted `(predicted, pattern)` pair, exactly
    /// like [`Monitor::check_pattern`] plus the distance column of
    /// [`Monitor`]'s reports.
    pub fn report(&self, predicted: usize, pattern: &Pattern) -> MonitorReport {
        match self.zone(predicted) {
            None => MonitorReport {
                predicted,
                verdict: Verdict::Unmonitored,
                distance_to_seeds: None,
            },
            Some(z) => MonitorReport {
                predicted,
                verdict: if z.contains(pattern) {
                    Verdict::InPattern
                } else {
                    Verdict::OutOfPattern
                },
                distance_to_seeds: z.distance_to_seeds(pattern),
            },
        }
    }
}

/// An immutable, shard-partitioned snapshot of a [`Monitor`] ready for
/// concurrent serving.
///
/// Freezing is the deployment boundary: build and γ-tune a [`Monitor`]
/// offline, then [`FrozenMonitor::freeze`] (or
/// [`FrozenMonitor::shard_by_class`]) it for the engine.  A frozen
/// monitor deliberately does **not** implement
/// [`naps_core::ActivationMonitor`]: that trait includes `enlarge_to`,
/// and a frozen zone cannot grow — enrich the live [`Monitor`]
/// ([`Monitor::enrich`]), re-freeze, and hot-swap the new snapshot in
/// via `MonitorEngine::publish`.
///
/// Every frozen monitor carries an **epoch** — the version stamp of the
/// zone set it was cut from.  The serving engine stamps each verdict
/// with the epoch of the snapshot that judged it, so results stay
/// attributable across live updates, and [`FrozenMonitor::save`] /
/// [`FrozenMonitor::load`] persist the epoch alongside the zones for
/// warm restarts.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenMonitor {
    layer: usize,
    gamma: u32,
    selection: NeuronSelection,
    num_classes: usize,
    shards: Vec<MonitorShard>,
    epoch: u64,
}

/// Why a [`FrozenMonitor::save`] / [`FrozenMonitor::load`] failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Reading or writing the file failed.
    Io(io::Error),
    /// The bytes are not the JSON shape this version writes.
    Format(serde_json::Error),
    /// A zone snapshot inside the file is structurally invalid (truncated
    /// or tampered); loading it would make queries walk out of bounds.
    Corrupt(BddError),
    /// The file is well-formed but describes a monitor this build cannot
    /// serve (unknown format version, inconsistent widths, zero shards).
    Incompatible(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "monitor persistence i/o error: {e}"),
            PersistError::Format(e) => write!(f, "monitor file is not valid JSON: {e}"),
            PersistError::Corrupt(e) => write!(f, "monitor file holds a corrupt zone: {e}"),
            PersistError::Incompatible(what) => write!(f, "monitor file incompatible: {what}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            PersistError::Corrupt(e) => Some(e),
            PersistError::Incompatible(_) => None,
        }
    }
}

/// On-disk shape of a [`FrozenMonitor`]: one record per class (shards are
/// re-cut on load), plus the metadata needed to re-attach to a model.
#[derive(Debug, Serialize, Deserialize)]
struct PersistedMonitor {
    format: u32,
    epoch: u64,
    layer: usize,
    gamma: u32,
    selection: NeuronSelection,
    num_shards: usize,
    zones: Vec<Option<PersistedZone>>,
}

/// Version tag of [`PersistedMonitor`]; bump on breaking layout changes.
const PERSIST_FORMAT: u32 = 1;

impl FrozenMonitor {
    /// Freezes a monitor into a single shard (no class partitioning).
    pub fn freeze(monitor: &Monitor<BddZone>) -> Self {
        Self::shard_by_class(monitor, 1)
    }

    /// Freezes a monitor and splits its classes round-robin into
    /// `num_shards` disjoint shards (class `c` goes to shard
    /// `c % num_shards`).  Zones are `Arc`-shared, so this is cheap in
    /// memory no matter how many shards are cut.  The epoch starts at 0;
    /// see [`FrozenMonitor::with_epoch`].
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn shard_by_class(monitor: &Monitor<BddZone>, num_shards: usize) -> Self {
        let num_classes = monitor.num_classes();
        let frozen: Vec<Option<Arc<FrozenZone>>> = (0..num_classes)
            .map(|c| monitor.zone(c).map(|z| Arc::new(FrozenZone::freeze(z))))
            .collect();
        Self::from_class_zones(
            frozen,
            num_shards,
            monitor.layer(),
            monitor.gamma(),
            monitor.selection().clone(),
            0,
        )
    }

    /// Assembles a monitor from per-class frozen zones (slot `c` = class
    /// `c`), cutting `num_shards` round-robin shards over them.
    fn from_class_zones(
        zones: Vec<Option<Arc<FrozenZone>>>,
        num_shards: usize,
        layer: usize,
        gamma: u32,
        selection: NeuronSelection,
        epoch: u64,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let num_classes = zones.len();
        let shards = (0..num_shards)
            .map(|index| MonitorShard {
                index,
                num_shards,
                zones: zones
                    .iter()
                    .skip(index)
                    .step_by(num_shards)
                    .cloned()
                    .collect(),
                num_classes,
            })
            .collect();
        FrozenMonitor {
            layer,
            gamma,
            selection,
            num_classes,
            shards,
            epoch,
        }
    }

    /// The same monitor stamped with `epoch` (builder style).  Epochs are
    /// ordinarily assigned by the serving engine's publish path; set one
    /// manually only when managing versions yourself.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The zone-set version this snapshot was cut from.  Verdicts served
    /// from this snapshot carry this value.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Persists every class snapshot plus metadata (layer, γ, selection,
    /// shard count, epoch) as JSON through `naps-bdd`'s serializer, for
    /// warm restarts: a restarted service [`FrozenMonitor::load`]s and
    /// serves without retraining, re-observing or re-dilating anything.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        let json = serde_json::to_string(&self.to_persisted()).map_err(PersistError::Format)?;
        fs::write(path, json).map_err(PersistError::Io)
    }

    /// The on-disk record of this monitor (shards are re-cut on load).
    fn to_persisted(&self) -> PersistedMonitor {
        PersistedMonitor {
            format: PERSIST_FORMAT,
            epoch: self.epoch,
            layer: self.layer,
            gamma: self.gamma,
            selection: self.selection.clone(),
            num_shards: self.shards.len(),
            zones: (0..self.num_classes)
                .map(|c| self.zone(c).map(FrozenZone::to_persisted))
                .collect(),
        }
    }

    /// Validates and reassembles one persisted per-layer record — the
    /// shared back half of [`FrozenMonitor::load`] and
    /// [`FrozenLayeredMonitor::load`].
    fn from_persisted(persisted: PersistedMonitor) -> Result<Self, PersistError> {
        if persisted.format != PERSIST_FORMAT {
            return Err(PersistError::Incompatible("unknown format version"));
        }
        if persisted.num_shards == 0 {
            return Err(PersistError::Incompatible("zero shards"));
        }
        let width = persisted.selection.len();
        for z in persisted.zones.iter().flatten() {
            z.zone.validate().map_err(PersistError::Corrupt)?;
            z.seeds.validate().map_err(PersistError::Corrupt)?;
            if z.zone.num_vars() != width || z.seeds.num_vars() != width {
                return Err(PersistError::Incompatible(
                    "zone width differs from selection width",
                ));
            }
        }
        Ok(Self::from_class_zones(
            persisted
                .zones
                .into_iter()
                .map(|z| z.map(|z| Arc::new(z.into_frozen())))
                .collect(),
            persisted.num_shards,
            persisted.layer,
            persisted.gamma,
            persisted.selection,
            persisted.epoch,
        ))
    }

    /// Restores a monitor saved by [`FrozenMonitor::save`]: the exact
    /// same snapshots (zone-for-zone, epoch included), re-cut into the
    /// saved shard layout.
    ///
    /// Every zone snapshot is structurally validated
    /// ([`BddSnapshot::validate`]) before it is accepted — the serving
    /// hot path walks snapshots without bounds checks, so corrupt bytes
    /// must be rejected here, not discovered mid-query.
    ///
    /// # Errors
    ///
    /// See [`PersistError`].
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        let text = fs::read_to_string(path).map_err(PersistError::Io)?;
        let persisted: PersistedMonitor =
            serde_json::from_str(&text).map_err(PersistError::Format)?;
        Self::from_persisted(persisted)
    }

    /// Index of the monitored layer in the [`Sequential`] model.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// The Hamming budget γ the zones were frozen at.
    pub fn gamma(&self) -> u32 {
        self.gamma
    }

    /// The monitored neuron subset.
    pub fn selection(&self) -> &NeuronSelection {
        &self.selection
    }

    /// Number of classes (monitored or not).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The disjoint class shards.
    pub fn shards(&self) -> &[MonitorShard] {
        &self.shards
    }

    /// The shard owning `class`.
    pub fn shard_for(&self, class: usize) -> &MonitorShard {
        &self.shards[class % self.shards.len()]
    }

    /// The frozen zone of `class`, if monitored.
    pub fn zone(&self, class: usize) -> Option<&FrozenZone> {
        if class >= self.num_classes {
            return None;
        }
        self.shard_for(class).zone(class)
    }

    /// Checks a pattern against the zone of `class` — the frozen
    /// counterpart of [`Monitor::check_pattern`].
    pub fn check_pattern(&self, class: usize, pattern: &Pattern) -> Verdict {
        match self.zone(class) {
            None => Verdict::Unmonitored,
            Some(z) => {
                if z.contains(pattern) {
                    Verdict::InPattern
                } else {
                    Verdict::OutOfPattern
                }
            }
        }
    }

    /// Judges an already-extracted `(predicted, pattern)` pair by routing
    /// it to the owning shard.
    pub fn report(&self, predicted: usize, pattern: &Pattern) -> MonitorReport {
        if predicted >= self.num_classes {
            return MonitorReport {
                predicted,
                verdict: Verdict::Unmonitored,
                distance_to_seeds: None,
            };
        }
        self.shard_for(predicted).report(predicted, pattern)
    }

    /// Judges a batch of already-extracted `(predicted, pattern)` pairs —
    /// element `i` equals [`FrozenMonitor::report`] on pair `i`, but rows
    /// are grouped by predicted class so each zone judges all of its rows
    /// in one membership pass, which lets the compiled bit-sliced
    /// evaluator answer up to 64 rows per sweep of the node array.  This
    /// is the engine's micro-batch judging path.
    pub fn report_batch(&self, pairs: &[(usize, &Pattern)]) -> Vec<MonitorReport> {
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        let mut out: Vec<Option<MonitorReport>> = Vec::with_capacity(pairs.len());
        for (row, &(predicted, _)) in pairs.iter().enumerate() {
            if predicted < self.num_classes && self.zone(predicted).is_some() {
                by_class[predicted].push(row);
                out.push(None);
            } else {
                out.push(Some(MonitorReport {
                    predicted,
                    verdict: Verdict::Unmonitored,
                    distance_to_seeds: None,
                }));
            }
        }
        for (class, rows) in by_class.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            // naps-lint: allow(typed_errors, "by_class buckets were filled only for classes this monitor covers, so zone(class) is Some")
            let zone = self.zone(class).expect("grouped rows are monitored");
            let words: Vec<&[u64]> = rows.iter().map(|&r| pairs[r].1.words()).collect();
            let hits = zone.zone_eval().eval_many(&words);
            for (&row, hit) in rows.iter().zip(hits) {
                out[row] = Some(MonitorReport {
                    predicted: class,
                    verdict: if hit {
                        Verdict::InPattern
                    } else {
                        Verdict::OutOfPattern
                    },
                    distance_to_seeds: zone.distance_to_seeds(pairs[row].1),
                });
            }
        }
        out.into_iter()
            // naps-lint: allow(typed_errors, "the loops above wrote a verdict into every slot: each row landed in exactly one class bucket")
            .map(|r| r.expect("every row judged"))
            .collect()
    }

    /// Judges an already-extracted `(predicted, pattern)` pair with full
    /// graded detail: the frozen counterpart of
    /// [`Monitor::check_graded_pattern`], and **bit-identical** to it —
    /// the per-shard bounded distances ([`MonitorShard::nearest_within`])
    /// feed the same shared ranking/triage implementation
    /// ([`naps_core::graded::grade`]), and the snapshot DP agrees with
    /// the manager DP query-for-query (pinned by `naps-bdd`'s property
    /// tests).
    pub fn check_graded_pattern(
        &self,
        predicted: usize,
        pattern: &Pattern,
        query: GradedQuery,
    ) -> GradedReport {
        let report = self.report(predicted, pattern);
        // One bounded DP query per monitored class, total: the predicted
        // class's entry is split out of the per-shard rankings rather
        // than queried a second time.
        let mut distance_to_zone = None;
        let mut others: Vec<NearestZone> = Vec::new();
        for shard in &self.shards {
            for n in shard.nearest_within(pattern, query.budget) {
                if n.class == predicted {
                    distance_to_zone = Some(n.distance);
                } else {
                    others.push(n);
                }
            }
        }
        grade(report, distance_to_zone, others, query)
    }

    /// Extracts `(predicted class, monitored pattern)` pairs for a batch
    /// with one shared forward pass — the frozen counterpart of
    /// [`Monitor::observe_batch`], and the common front half of
    /// [`FrozenMonitor::check_batch`] /
    /// [`FrozenMonitor::check_graded_batch`].
    pub fn observe_batch(
        &self,
        model: &mut Sequential,
        inputs: &[Tensor],
    ) -> Vec<(usize, Pattern)> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let batch = pack_batch(inputs);
        let ObservedBatch {
            predicted,
            observed,
        } = forward_observe_plan(model, &batch, &ObservationPlan::single(self.layer));
        let monitored = &observed[0];
        predicted
            .into_iter()
            .enumerate()
            .map(|(r, p)| (p, self.selection.pattern_from(monitored.row(r))))
            .collect()
    }

    /// Batched judgement sharing one forward pass — the same packed path
    /// as [`Monitor::check_batch`] (`pack_batch` →
    /// `forward_observe_plan` → batched verdicts), so verdicts are
    /// bit-identical to the live monitor's.
    pub fn check_batch(&self, model: &mut Sequential, inputs: &[Tensor]) -> Vec<MonitorReport> {
        let observed = self.observe_batch(model, inputs);
        let pairs: Vec<(usize, &Pattern)> = observed.iter().map(|(p, pat)| (*p, pat)).collect();
        self.report_batch(&pairs)
    }

    /// Batched graded judgement sharing one forward pass — element `i`
    /// equals [`FrozenMonitor::check_graded_pattern`] on row `i`, and is
    /// bit-identical to [`Monitor::check_graded_batch`] on the source
    /// monitor.
    pub fn check_graded_batch(
        &self,
        model: &mut Sequential,
        inputs: &[Tensor],
        query: GradedQuery,
    ) -> Vec<GradedReport> {
        self.observe_batch(model, inputs)
            .into_iter()
            .map(|(p, pattern)| self.check_graded_pattern(p, &pattern, query))
            .collect()
    }

    /// Single-input judgement (a batch of one).
    pub fn check(&self, model: &mut Sequential, input: &Tensor) -> MonitorReport {
        self.check_batch(model, std::slice::from_ref(input))
            .pop()
            // naps-lint: allow(typed_errors, "check_batch returns one report per input row; the slice has exactly one row")
            .expect("one report per input")
    }
}

/// One jointly judged classification from a [`FrozenLayeredMonitor`]:
/// the frozen counterpart of [`naps_core::LayeredReport`], carrying the
/// full per-layer [`MonitorReport`]s (verdict **and** seed distance)
/// rather than bare verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeredVerdict {
    /// The network's decision.
    pub predicted: usize,
    /// One report per monitored layer, in the monitor's layer order.
    /// `per_layer[i].verdict` equals the corresponding entry of the live
    /// [`LayeredMonitor`]'s `per_layer`.
    pub per_layer: Vec<MonitorReport>,
    /// The [`CombinePolicy`]-combined verdict.
    pub combined: Verdict,
}

impl naps_core::MonitorOutcome for LayeredVerdict {
    fn out_of_pattern(&self) -> bool {
        self.combined == Verdict::OutOfPattern
    }
}

/// An immutable multi-layer monitor snapshot: one class-sharded
/// [`FrozenMonitor`] per monitored layer plus the [`CombinePolicy`] that
/// folds their verdicts — the deployable form of
/// [`naps_core::LayeredMonitor`], and the **only** shape the serving
/// engine ever holds.  A single-layer deployment is simply the `N = 1`
/// case ([`FrozenLayeredMonitor::from_single`]); there is no separate
/// single-layer serving path.
///
/// One batched forward pass observes every monitored layer: the
/// [`ObservationPlan`] retains exactly the monitored layers' activations,
/// so each additional layer costs shard lookups, never another forward
/// pass.  The container carries the **epoch**; its per-layer monitors are
/// stamped with the same value so a layer extracted via
/// [`FrozenLayeredMonitor::primary`] stays attributable.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenLayeredMonitor {
    /// Per-layer monitors in construction order (`Arc`-shared so the
    /// primary layer can be handed out without copying zones).
    layers: Vec<Arc<FrozenMonitor>>,
    policy: CombinePolicy,
    plan: ObservationPlan,
    epoch: u64,
}

impl FrozenLayeredMonitor {
    /// Lifts a single-layer monitor into the layered family — the
    /// `N = 1` special case.  The policy is irrelevant for one layer
    /// (every policy folds a lone verdict to itself); `Any` is recorded.
    /// The container adopts the monitor's epoch.
    pub fn from_single(monitor: FrozenMonitor) -> Self {
        let plan = ObservationPlan::single(monitor.layer());
        let epoch = monitor.epoch();
        FrozenLayeredMonitor {
            layers: vec![Arc::new(monitor)],
            policy: CombinePolicy::Any,
            plan,
            epoch,
        }
    }

    /// Assembles a layered monitor from per-layer frozen monitors.
    ///
    /// # Errors
    ///
    /// [`MonitorError::EmptyMonitorFamily`] when `monitors` is empty;
    /// [`MonitorError::ClassCountMismatch`] when the monitors disagree on
    /// the class count.  The epoch starts at 0
    /// (see [`FrozenLayeredMonitor::with_epoch`]).
    pub fn try_from_monitors(
        monitors: Vec<FrozenMonitor>,
        policy: CombinePolicy,
    ) -> Result<Self, MonitorError> {
        naps_core::validate_monitor_family(monitors.iter().map(|m| m.num_classes()))?;
        let plan = ObservationPlan::new(monitors.iter().map(|m| m.layer()).collect());
        let mut layered = FrozenLayeredMonitor {
            layers: monitors.into_iter().map(Arc::new).collect(),
            policy,
            plan,
            epoch: 0,
        };
        layered.set_epoch(0);
        Ok(layered)
    }

    /// Freezes a live [`LayeredMonitor`] into a single shard per layer.
    pub fn freeze(layered: &LayeredMonitor<BddZone>) -> Self {
        Self::shard_by_class(layered, 1)
    }

    /// Freezes a live [`LayeredMonitor`], splitting every layer's classes
    /// round-robin into `num_shards` disjoint shards (like
    /// [`FrozenMonitor::shard_by_class`], per layer).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn shard_by_class(layered: &LayeredMonitor<BddZone>, num_shards: usize) -> Self {
        let monitors = layered
            .monitors()
            .iter()
            .map(|m| FrozenMonitor::shard_by_class(m, num_shards))
            .collect();
        Self::try_from_monitors(monitors, layered.policy())
            // naps-lint: allow(typed_errors, "a live LayeredMonitor already passed the same family validation; re-freezing it cannot fail")
            .expect("a live LayeredMonitor is a valid family by construction")
    }

    /// The per-layer monitors, in construction order.
    pub fn layers(&self) -> &[Arc<FrozenMonitor>] {
        &self.layers
    }

    /// Number of monitored layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The **primary** layer: the first monitor in construction order.
    /// Single-layer views of a layered deployment (the engine's
    /// `EpochReport` projection, `MonitorEngine::monitor`) read this
    /// layer; builders put the paper's close-to-output monitor first.
    pub fn primary(&self) -> &Arc<FrozenMonitor> {
        &self.layers[0]
    }

    /// The verdict-combination policy.
    pub fn policy(&self) -> CombinePolicy {
        self.policy
    }

    /// The observation plan: deduplicated ascending monitored layer
    /// indices, the exact set of activations one forward pass retains.
    pub fn plan(&self) -> &ObservationPlan {
        &self.plan
    }

    /// Number of classes (monitored or not).
    pub fn num_classes(&self) -> usize {
        self.layers[0].num_classes()
    }

    /// The zone-set version this snapshot was cut from.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The same monitor stamped with `epoch` (builder style); the stamp
    /// propagates to every per-layer monitor.  Epochs are ordinarily
    /// assigned by the serving engine's publish path.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.set_epoch(epoch);
        self
    }

    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        for layer in &mut self.layers {
            Arc::make_mut(layer).set_epoch(epoch);
        }
    }

    /// Extracts, for each input, the predicted class plus one observed
    /// pattern per monitored layer — **one** forward pass for the whole
    /// batch retaining only the planned layers' activations, the common
    /// front half of every layered check.
    pub fn observe_batch(
        &self,
        model: &mut Sequential,
        inputs: &[Tensor],
    ) -> Vec<(usize, Vec<Pattern>)> {
        observe_layered_batch(
            model,
            inputs,
            &self.plan,
            self.layers.iter().map(|m| (m.layer(), m.selection())),
        )
    }

    /// The allocation-free counterpart of
    /// [`FrozenLayeredMonitor::observe_batch`]: runs the pre-packed
    /// forward pass and refills `observer`'s reused storage, returning
    /// the live rows.  Bit-identical to the allocating path — `model`
    /// must have been prepared with this monitor's
    /// [`plan`](FrozenLayeredMonitor::plan) (the engine prepares both
    /// from the same published snapshot).
    ///
    /// # Panics
    ///
    /// Panics if a monitored layer is missing from `model`'s plan.
    pub fn observe_batch_prepared<'a>(
        &self,
        model: &PreparedModel,
        observer: &'a mut PreparedObserver,
        inputs: &[Tensor],
    ) -> &'a [(usize, Vec<Pattern>)] {
        observer.observe(
            model,
            inputs,
            self.layers.iter().map(|m| (m.layer(), m.selection())),
        )
    }

    /// Judges already-extracted per-layer patterns (one per monitored
    /// layer, in layer order): each layer's shard reports, then the
    /// policy fold — per-layer verdicts are bit-identical to the live
    /// [`LayeredMonitor`]'s.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len() != self.num_layers()`.
    pub fn report(&self, predicted: usize, patterns: &[Pattern]) -> LayeredVerdict {
        assert_eq!(
            patterns.len(),
            self.layers.len(),
            "one pattern per monitored layer"
        );
        let per_layer: Vec<MonitorReport> = self
            .layers
            .iter()
            .zip(patterns)
            .map(|(m, pattern)| m.report(predicted, pattern))
            .collect();
        let verdicts: Vec<Verdict> = per_layer.iter().map(|r| r.verdict).collect();
        LayeredVerdict {
            predicted,
            per_layer,
            combined: self.policy.combine(&verdicts),
        }
    }

    /// Judges a batch of already-observed rows — element `i` equals
    /// [`FrozenLayeredMonitor::report`] on row `i`, but each layer judges
    /// the whole batch at once ([`FrozenMonitor::report_batch`]) so the
    /// compiled bit-sliced evaluators see full class groups.  This is the
    /// engine's micro-batch judging path.
    ///
    /// # Panics
    ///
    /// Panics if any row does not carry one pattern per monitored layer.
    pub fn report_batch(&self, rows: &[(usize, &[Pattern])]) -> Vec<LayeredVerdict> {
        for &(_, patterns) in rows {
            assert_eq!(
                patterns.len(),
                self.layers.len(),
                "one pattern per monitored layer"
            );
        }
        let layer_reports: Vec<Vec<MonitorReport>> = self
            .layers
            .iter()
            .enumerate()
            .map(|(l, m)| {
                let pairs: Vec<(usize, &Pattern)> =
                    rows.iter().map(|&(p, pats)| (p, &pats[l])).collect();
                m.report_batch(&pairs)
            })
            .collect();
        rows.iter()
            .enumerate()
            .map(|(r, &(predicted, _))| {
                let per_layer: Vec<MonitorReport> =
                    layer_reports.iter().map(|lr| lr[r].clone()).collect();
                let verdicts: Vec<Verdict> = per_layer.iter().map(|x| x.verdict).collect();
                LayeredVerdict {
                    predicted,
                    per_layer,
                    combined: self.policy.combine(&verdicts),
                }
            })
            .collect()
    }

    /// Graded [`FrozenLayeredMonitor::report`]: additionally computes the
    /// full graded ranking per layer ([`FrozenMonitor::check_graded_pattern`],
    /// bit-identical to the live monitor's).  The binary half is
    /// assembled from the reports the graded queries embed, so the two
    /// halves can never disagree.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len() != self.num_layers()`.
    pub fn check_graded_pattern(
        &self,
        predicted: usize,
        patterns: &[Pattern],
        query: GradedQuery,
    ) -> (LayeredVerdict, Vec<GradedReport>) {
        assert_eq!(
            patterns.len(),
            self.layers.len(),
            "one pattern per monitored layer"
        );
        let graded: Vec<GradedReport> = self
            .layers
            .iter()
            .zip(patterns)
            .map(|(m, pattern)| m.check_graded_pattern(predicted, pattern, query))
            .collect();
        let per_layer: Vec<MonitorReport> = graded.iter().map(|g| g.report.clone()).collect();
        let verdicts: Vec<Verdict> = per_layer.iter().map(|r| r.verdict).collect();
        (
            LayeredVerdict {
                predicted,
                per_layer,
                combined: self.policy.combine(&verdicts),
            },
            graded,
        )
    }

    /// Batched joint judgement sharing one plan-observed forward pass.
    pub fn check_batch(&self, model: &mut Sequential, inputs: &[Tensor]) -> Vec<LayeredVerdict> {
        let observed = self.observe_batch(model, inputs);
        let rows: Vec<(usize, &[Pattern])> = observed
            .iter()
            .map(|(p, patterns)| (*p, patterns.as_slice()))
            .collect();
        self.report_batch(&rows)
    }

    /// Batched graded joint judgement sharing one forward pass; element
    /// `i` equals [`FrozenLayeredMonitor::check_graded_pattern`] on row
    /// `i`'s observation.
    pub fn check_graded_batch(
        &self,
        model: &mut Sequential,
        inputs: &[Tensor],
        query: GradedQuery,
    ) -> Vec<(LayeredVerdict, Vec<GradedReport>)> {
        self.observe_batch(model, inputs)
            .into_iter()
            .map(|(p, patterns)| self.check_graded_pattern(p, &patterns, query))
            .collect()
    }

    /// Single-input judgement (a batch of one).
    pub fn check(&self, model: &mut Sequential, input: &Tensor) -> LayeredVerdict {
        self.check_batch(model, std::slice::from_ref(input))
            .pop()
            // naps-lint: allow(typed_errors, "check_batch returns one report per input row; the slice has exactly one row")
            .expect("one report per input")
    }

    /// Persists the whole family — every layer's class snapshots plus the
    /// combine policy and epoch — as a versioned JSON container
    /// (format 2).  [`FrozenLayeredMonitor::load`] restores it; it also
    /// accepts the pre-layered single-monitor format
    /// ([`FrozenMonitor::save`], format 1), lifted to `N = 1`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        let persisted = PersistedLayeredMonitor {
            format: PERSIST_FORMAT_LAYERED,
            epoch: self.epoch,
            policy: self.policy,
            layers: self.layers.iter().map(|m| m.to_persisted()).collect(),
        };
        let json = serde_json::to_string(&persisted).map_err(PersistError::Format)?;
        fs::write(path, json).map_err(PersistError::Io)
    }

    /// Restores a monitor saved by [`FrozenLayeredMonitor::save`]
    /// **or** by the pre-layered [`FrozenMonitor::save`] — old
    /// single-layer files keep loading forever, as the `N = 1` case
    /// (policy `Any`).  Every zone snapshot of every layer is
    /// structurally validated before acceptance, exactly as the
    /// single-layer load does.
    ///
    /// # Errors
    ///
    /// See [`PersistError`]; a file that parses as neither format
    /// reports the layered parse failure.
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        let text = fs::read_to_string(path).map_err(PersistError::Io)?;
        match serde_json::from_str::<PersistedLayeredMonitor>(&text) {
            Ok(container) => {
                if container.format != PERSIST_FORMAT_LAYERED {
                    return Err(PersistError::Incompatible("unknown format version"));
                }
                let mut monitors = Vec::with_capacity(container.layers.len());
                for layer in container.layers {
                    monitors.push(FrozenMonitor::from_persisted(layer)?);
                }
                let layered = Self::try_from_monitors(monitors, container.policy)
                    .map_err(|_| PersistError::Incompatible("invalid layer family"))?;
                Ok(layered.with_epoch(container.epoch))
            }
            Err(layered_err) => {
                // Not a layered container: the pre-layered single-monitor
                // format parses as one per-layer record.
                let persisted: PersistedMonitor =
                    serde_json::from_str(&text).map_err(|_| PersistError::Format(layered_err))?;
                Ok(Self::from_single(FrozenMonitor::from_persisted(persisted)?))
            }
        }
    }
}

/// On-disk shape of a [`FrozenLayeredMonitor`]: the versioned container
/// around one [`PersistedMonitor`] record per layer.
#[derive(Debug, Serialize, Deserialize)]
struct PersistedLayeredMonitor {
    format: u32,
    epoch: u64,
    policy: CombinePolicy,
    layers: Vec<PersistedMonitor>,
}

/// Version tag of [`PersistedLayeredMonitor`].  Format 1 is the
/// pre-layered [`PersistedMonitor`]; bump past 2 on breaking layout
/// changes.
const PERSIST_FORMAT_LAYERED: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use naps_core::Zone;

    fn p(bits: &[u8]) -> Pattern {
        Pattern::from_bools(&bits.iter().map(|&b| b == 1).collect::<Vec<_>>())
    }

    fn sample_monitor(num_classes: usize) -> Monitor<BddZone> {
        let width = 6;
        let zones: Vec<Option<BddZone>> = (0..num_classes)
            .map(|c| {
                if c == 2 {
                    return None; // one unmonitored class
                }
                let mut z = BddZone::empty(width);
                for k in 0..3u64 {
                    let bits: Vec<u8> = (0..width)
                        .map(|b| (((c as u64 + k) >> (b % 3)) & 1) as u8)
                        .collect();
                    z.insert(&p(&bits));
                }
                z.enlarge_to(1);
                Some(z)
            })
            .collect();
        Monitor::from_zones(zones, 1, NeuronSelection::all(width), 1)
    }

    #[test]
    fn frozen_verdicts_match_live_monitor() {
        let monitor = sample_monitor(5);
        for shards in [1, 2, 3, 5, 8] {
            let frozen = FrozenMonitor::shard_by_class(&monitor, shards);
            assert_eq!(frozen.num_classes(), 5);
            for m in 0..64u32 {
                let bits: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
                let pat = Pattern::from_bools(&bits);
                for c in 0..5 {
                    assert_eq!(
                        frozen.check_pattern(c, &pat),
                        monitor.check_pattern(c, &pat),
                        "class {c} pattern {m:06b} shards {shards}"
                    );
                    let live_dist = monitor.zone(c).and_then(|z| z.distance_to_seeds(&pat));
                    let rep = frozen.report(c, &pat);
                    assert_eq!(rep.distance_to_seeds, live_dist);
                    assert_eq!(rep.predicted, c);
                }
            }
        }
    }

    #[test]
    fn classes_never_report_a_phantom_class() {
        // Non-divisible class/shard combinations, including more shards
        // than classes: every class a shard reports must be one it owns
        // and must exist, and the union across shards must be exactly
        // 0..num_classes.
        for num_classes in 1..=7usize {
            let monitor = sample_monitor(num_classes);
            for shards in 1..=9usize {
                let frozen = FrozenMonitor::shard_by_class(&monitor, shards);
                let mut seen = vec![0usize; num_classes];
                for shard in frozen.shards() {
                    for c in shard.classes() {
                        assert!(
                            c < num_classes,
                            "shard {}/{shards} reported phantom class {c} of {num_classes}",
                            shard.index()
                        );
                        assert!(shard.owns(c));
                        // Owned classes must be resolvable, not panic.
                        let _ = shard.zone(c);
                        seen[c] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&n| n == 1),
                    "classes not partitioned ({num_classes} classes, {shards} shards): {seen:?}"
                );
            }
        }
    }

    #[test]
    fn frozen_graded_verdicts_match_live_monitor() {
        use naps_core::GradedQuery;
        let monitor = sample_monitor(5);
        for shards in [1, 2, 3, 5, 8] {
            let frozen = FrozenMonitor::shard_by_class(&monitor, shards);
            for budget in 0..4u32 {
                let query = GradedQuery::new(budget, 3);
                for m in 0..64u32 {
                    let bits: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
                    let pat = Pattern::from_bools(&bits);
                    for c in 0..5 {
                        assert_eq!(
                            frozen.check_graded_pattern(c, &pat, query),
                            monitor.check_graded_pattern(c, &pat, query),
                            "class {c} pattern {m:06b} shards {shards} budget {budget}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn frozen_zone_bounded_distance_truncates_unbounded() {
        let monitor = sample_monitor(4);
        let frozen = FrozenMonitor::freeze(&monitor);
        for c in [0usize, 1, 3] {
            let zone = frozen.zone(c).expect("monitored");
            for m in 0..64u32 {
                let bits: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
                let pat = Pattern::from_bools(&bits);
                let exact = zone.distance_to_zone(&pat);
                assert!(exact.is_some(), "non-empty zone");
                for budget in 0..4u32 {
                    assert_eq!(
                        zone.distance_to_zone_within(&pat, budget),
                        exact.filter(|&d| d <= budget)
                    );
                }
                // Zone distance 0 iff membership.
                assert_eq!(zone.contains(&pat), exact == Some(0));
            }
        }
    }

    #[test]
    fn shards_partition_the_classes() {
        let monitor = sample_monitor(7);
        let frozen = FrozenMonitor::shard_by_class(&monitor, 3);
        let mut seen = vec![0usize; 7];
        for shard in frozen.shards() {
            for c in shard.classes() {
                assert!(shard.owns(c));
                seen[c] += 1;
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "classes not partitioned: {seen:?}"
        );
        // Ownership and routing agree.
        for c in 0..7 {
            assert!(frozen.shard_for(c).owns(c));
        }
    }

    #[test]
    fn unmonitored_class_reports_unmonitored() {
        let frozen = FrozenMonitor::freeze(&sample_monitor(4));
        let rep = frozen.report(2, &p(&[0, 0, 0, 0, 0, 0]));
        assert_eq!(rep.verdict, Verdict::Unmonitored);
        assert_eq!(rep.distance_to_seeds, None);
        // Out-of-range predictions degrade to Unmonitored too.
        let rep = frozen.report(99, &p(&[0, 0, 0, 0, 0, 0]));
        assert_eq!(rep.verdict, Verdict::Unmonitored);
    }

    #[test]
    #[should_panic(expected = "does not own class")]
    fn wrong_shard_routing_panics() {
        let frozen = FrozenMonitor::shard_by_class(&sample_monitor(4), 2);
        let _ = frozen.shards()[0].zone(1);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("naps_serve_persist_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn save_load_roundtrips_snapshot_for_snapshot() {
        let frozen = FrozenMonitor::shard_by_class(&sample_monitor(5), 3).with_epoch(42);
        let path = temp_path("roundtrip.json");
        frozen.save(&path).expect("save");
        let restored = FrozenMonitor::load(&path).expect("load");
        // Structural equality: every shard, every zone, every node array.
        assert_eq!(restored, frozen);
        assert_eq!(restored.epoch(), 42);
        // And behavioural equality on the full query space.
        for m in 0..64u32 {
            let bits: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let pat = Pattern::from_bools(&bits);
            for c in 0..5 {
                assert_eq!(restored.report(c, &pat), frozen.report(c, &pat));
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_corrupt_and_missing_files() {
        assert!(matches!(
            FrozenMonitor::load(std::path::Path::new("/nonexistent/naps.json")),
            Err(PersistError::Io(_))
        ));
        let path = temp_path("garbage.json");
        std::fs::write(&path, "{not json").expect("write");
        assert!(matches!(
            FrozenMonitor::load(&path),
            Err(PersistError::Format(_))
        ));
        // A structurally broken zone snapshot must be caught up front:
        // corrupt a child index in an otherwise valid save.
        let frozen = FrozenMonitor::freeze(&sample_monitor(4));
        frozen.save(&path).expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        // Sanity: saved files load before tampering.
        assert!(FrozenMonitor::load(&path).is_ok());
        let tampered = text
            .replacen("\"format\": 1", "\"format\": 99", 1)
            .replace("\"format\":1", "\"format\":99");
        std::fs::write(&path, tampered).expect("write");
        assert!(matches!(
            FrozenMonitor::load(&path),
            Err(PersistError::Incompatible(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn epochs_stamp_and_persist() {
        let monitor = sample_monitor(4);
        let frozen = FrozenMonitor::freeze(&monitor);
        assert_eq!(frozen.epoch(), 0);
        let stamped = frozen.with_epoch(7);
        assert_eq!(stamped.epoch(), 7);
        // Epoch participates in equality: same zones, different version.
        let again = FrozenMonitor::freeze(&monitor);
        assert_ne!(stamped, again);
        assert_eq!(again, FrozenMonitor::freeze(&monitor));
    }

    #[test]
    fn frozen_monitor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenZone>();
        assert_send_sync::<MonitorShard>();
        assert_send_sync::<FrozenMonitor>();
    }
}
