//! The engine worker: the per-thread serving loop, its forward-pass
//! engine, and the drop guard that keeps the "no hung ticket" invariant.
//!
//! This file is the steady-state request path — everything that runs per
//! micro-batch between intake and completion — split out of `engine.rs`
//! so the analyzer can hold it to the hot-path discipline: it is
//! deny-listed under both `panic_freedom` (a request must never take a
//! worker down) and `hot_path_alloc` (steady-state observation must not
//! touch the allocator; the per-batch envelope below carries explicit
//! waivers).  The cold half — construction, publish, shutdown — stays in
//! `engine.rs`.

use super::{next_batch, LayeredEpochReport, Request, Shared};
use crate::frozen::{FrozenLayeredMonitor, LayeredVerdict};
use naps_core::prepared::PreparedObserver;
use naps_core::Pattern;
use naps_nn::{ModelSnapshot, PreparedModel, Sequential};
use naps_sync::atomic::Ordering;
use naps_sync::Arc;
use std::collections::VecDeque;

/// A worker's forward-pass engine.
///
/// `Prepared` is the steady-state form: the replica's frozen weights are
/// pre-packed once at construction ([`WorkerModel::prepare`]) and the
/// worker owns a [`PreparedObserver`] whose batch/carry/pattern storage
/// is reused across micro-batches — zero heap allocation per observation
/// after warm-up.  `Live` is the fallback for replicas the snapshot
/// format cannot express (convolutional models): the original allocating
/// observe path, bit-identical verdicts either way.
pub(super) enum WorkerModel {
    Prepared {
        model: PreparedModel,
        // Boxed so the enum stays small next to `Live`; built once per
        // worker, dereferenced once per micro-batch.
        observer: Box<PreparedObserver>,
    },
    Live(Sequential),
}

impl WorkerModel {
    /// Prepares one replica for serving: snapshot capture plus weight
    /// pre-packing against the monitor's observation plan — the model
    /// counterpart of zone compilation, run in the cold construction
    /// path so the worker loop itself never packs or allocates weights.
    /// Publish keeps the plan and selections compatible (validated), so
    /// a prepared model stays valid across snapshot swaps.
    pub(super) fn prepare(model: Sequential, monitor: &FrozenLayeredMonitor) -> Self {
        match ModelSnapshot::capture(&model) {
            Ok(snapshot) => WorkerModel::Prepared {
                model: snapshot.prepare(monitor.plan()),
                observer: Box::new(PreparedObserver::new()),
            },
            Err(_) => WorkerModel::Live(model),
        }
    }
}

/// Runs when a worker thread exits — normally (orderly shutdown with
/// empty queues) or by unwinding out of a panic.  Its job is the "no
/// hung ticket" invariant:
///
/// * A **panicking** worker may leave queued requests behind that only
///   *it* was notified about; siblings are re-woken so they re-check the
///   queues and steal the orphans.
/// * The **last** worker to exit takes the queues with it: nothing can
///   ever pop them again, so any still-queued request is drained and
///   dropped — dropping a [`Request`] drops its completion callback,
///   which disconnects the ticket channel and resolves the ticket with
///   [`SubmitError::WorkerLost`] instead of leaving it hanging.  If the
///   exit was a panic (not an orderly drain), the engine is also marked
///   failed so subsequent submissions get the same typed error.
///
/// [`SubmitError::WorkerLost`]: super::SubmitError::WorkerLost
pub(super) struct WorkerGuard {
    pub(super) shared: Arc<Shared>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let panicked = naps_sync::thread::panicking();
        // ordering: acqrel — the last decrement must observe every
        // earlier worker's effects before declaring the engine dead, and
        // release this worker's own writes to whoever reads `alive`.
        let last = self.shared.alive.fetch_sub(1, Ordering::AcqRel) == 1;
        if !panicked && !last {
            return;
        }
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if panicked && last {
            // A surviving sibling keeps a degraded engine serving; with
            // none left the engine is failed, not merely degraded.
            state.failed = true;
            state.shutdown = true;
        }
        let orphans: Vec<VecDeque<Request>> = if last {
            state.pending = 0;
            state.queues.iter_mut().map(std::mem::take).collect()
        } else {
            // naps-lint: allow(hot_path_alloc, "worker-exit path: runs once per thread lifetime, never per request (and an empty Vec does not allocate)")
            Vec::new()
        };
        drop(state);
        // Siblings blocked in `next_batch` re-check the queues (a panic
        // can eat a submission's one `notify_one`); blocked submitters
        // re-check the shutdown/failed flags.
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        drop(orphans);
    }
}

pub(super) fn worker_loop(id: usize, shared: &Shared, mut model: WorkerModel) {
    // Each worker serves from its own Arc onto the published snapshot and
    // re-reads the publish slot only at micro-batch boundaries where the
    // epoch atomic says a newer snapshot exists: a batch is judged wholly
    // by one snapshot, and the hot path takes no lock in steady state.
    let mut monitor: Arc<FrozenLayeredMonitor> =
        Arc::clone(&shared.published.lock().unwrap_or_else(|e| e.into_inner()));
    let mut epoch = monitor.epoch();
    while let Some(batch) = next_batch(id, shared) {
        // ordering: acquire — pairs with publish's Release store; a moved
        // epoch guarantees the slot re-read below sees the new snapshot.
        if shared.epoch.load(Ordering::Acquire) != epoch {
            // Publish validates plan/selection/class compatibility, so
            // the prepared model (pre-packed against the construction
            // plan) stays valid — only the judging zones change.
            monitor = Arc::clone(&shared.published.lock().unwrap_or_else(|e| e.into_inner()));
            epoch = monitor.epoch();
        }
        // Per-batch envelope: intake and completion bookkeeping sized to
        // the micro-batch.  This is outside the zero-allocation guarantee
        // (which covers the observation below); `with_capacity`/`collect`
        // here are one allocation per *batch*, not per request element.
        let mut inputs = Vec::with_capacity(batch.len());
        let mut metas = Vec::with_capacity(batch.len());
        for r in batch {
            inputs.push(r.input);
            metas.push((r.graded, r.complete));
        }
        // One plan-observed forward pass for the micro-batch — only the
        // monitored layers' activations are retained.  Binary rows are
        // then judged as one batch (`report_batch` groups rows by
        // predicted class so the compiled bit-sliced evaluators answer
        // whole groups per pass); graded rows keep their per-row ranking
        // query (one computation — each graded report embeds its binary
        // one).  Mixed batches are fine; the snapshot is the same either
        // way, and completions stay in submission order.
        let live_rows: Vec<(usize, Vec<Pattern>)>;
        let observed: &[(usize, Vec<Pattern>)] = match &mut model {
            // The steady-state path: packed weights, worker-owned
            // scratch, zero allocations after warm-up (the `forward`
            // eval gates this at exactly zero).
            WorkerModel::Prepared { model, observer } => {
                monitor.observe_batch_prepared(model, observer, &inputs)
            }
            WorkerModel::Live(seq) => {
                live_rows = monitor.observe_batch(seq, &inputs);
                &live_rows
            }
        };
        shared
            .processed
            // ordering: relaxed — monotone stat counter
            .fetch_add(observed.len() as u64, Ordering::Relaxed);
        let binary_rows: Vec<(usize, &[Pattern])> = metas
            .iter()
            .zip(observed)
            .filter(|((query, _), _)| query.is_none())
            .map(|(_, (predicted, patterns))| (*predicted, patterns.as_slice()))
            .collect();
        let mut binary_verdicts = monitor.report_batch(&binary_rows).into_iter();
        let mut results = Vec::with_capacity(observed.len());
        for ((query, complete), (predicted, patterns)) in metas.into_iter().zip(observed) {
            let (verdict, graded) = match query {
                None => (
                    binary_verdicts
                        .next()
                        // naps-lint: allow(panic_freedom, typed_errors, "report_batch returns exactly one verdict per binary row collected six lines up in this same function; unreachable from any input")
                        .expect("one batched verdict per binary row"),
                    None,
                ),
                Some(q) => {
                    let (verdict, graded) = monitor.check_graded_pattern(*predicted, patterns, q);
                    (verdict, Some(graded))
                }
            };
            results.push((complete, verdict, graded));
        }
        // Fold the batch's verdicts into the drift detectors (when
        // armed) before answering: one short lock per micro-batch, off
        // the per-request path.  A batch judged under a different epoch
        // than the detectors are armed for is skipped wholesale — a
        // publish racing this batch must not contaminate the freshly
        // re-armed detectors with old-zone evidence (nor stamp them
        // with the old epoch).
        {
            let mut drift = shared.drift.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(state) = drift.as_mut() {
                if state.epoch == epoch {
                    for (_, verdict, _) in &results {
                        state.observe(verdict);
                    }
                }
            }
        }
        for (complete, verdict, graded) in results {
            let LayeredVerdict {
                predicted,
                per_layer,
                combined,
            } = verdict;
            complete(LayeredEpochReport {
                epoch,
                predicted,
                per_layer,
                combined,
                graded,
            });
        }
    }
}
