//! # naps-serve — parallel monitoring engine
//!
//! The paper's deployment story (Figure 1) puts the activation-pattern
//! monitor inside a live inference loop.  `naps-core`'s monitors are
//! single-threaded library calls; this crate turns them into a
//! long-lived concurrent **service**: requests are collected into
//! micro-batches, fanned out across a work-stealing pool of worker
//! threads (each owning a model replica), and judged against per-class
//! comfort-zone shards that share immutable `Arc`'d BDD snapshots — so
//! the membership hot path takes **no lock at all**.
//!
//! | Type | Role |
//! |---|---|
//! | [`FrozenZone`] | one class's zone + seeds as immutable [`naps_bdd::BddSnapshot`]s |
//! | [`FrozenMonitor`] / [`MonitorShard`] | one layer's deployable monitor split class-wise into disjoint shards |
//! | [`FrozenLayeredMonitor`] / [`LayeredVerdict`] | the epoch-versioned N-layer family the engine serves (single-layer = N = 1) |
//! | [`MonitorEngine`] | the worker pool: batching, stealing, backpressure, hot swap |
//! | [`EngineConfig`] | workers / `max_batch` / `queue_capacity` knobs |
//! | [`VerdictTicket`] / [`LayeredVerdictTicket`] | handles to one in-flight verdict |
//! | [`EpochReport`] / [`LayeredEpochReport`] | a verdict stamped with the zone epoch that produced it, optionally carrying the graded payload(s) |
//! | [`ClassDriftStatus`] / [`LayerDriftStatus`] | epoch-stamped drift posture, combined and per (layer, class) |
//! | [`EngineStats`] | processed / batches / stolen / largest-batch / swaps counters |
//! | [`PersistError`] | why a frozen-monitor `save` / `load` failed |
//!
//! Verdicts are **bit-identical** to sequential
//! [`naps_core::Monitor::check`] /
//! [`naps_core::LayeredMonitor::check_batch`] checking: every path
//! reuses the same `pack_batch` → `forward_observe_plan` pipeline (one
//! forward pass retaining only the monitored layers' activations), model
//! replicas are exact parameter copies, and frozen-snapshot queries
//! agree with the live BDD manager query-for-query (pinned by property
//! tests in `naps-bdd` and the concurrency suite here).
//!
//! ## Multi-layer monitoring
//!
//! The engine natively serves **N monitored layers per query**: a
//! [`FrozenLayeredMonitor`] holds one class-sharded [`FrozenMonitor`]
//! per layer plus the [`naps_core::CombinePolicy`] (`Any` / `All` /
//! `Majority`) that folds the per-layer verdicts.  One observation-plan
//! forward pass feeds all layers — adding a monitored layer costs shard
//! lookups, never another forward pass — and the layered query APIs
//! ([`MonitorEngine::check_layered_batch`],
//! [`MonitorEngine::submit_layered`], …) return [`LayeredEpochReport`]s
//! carrying per-layer reports and, when requested, per-layer graded
//! rankings.  A single-layer engine is exactly the `N = 1` case; its
//! [`EpochReport`] API is the [`LayeredEpochReport::to_single`]
//! projection.  [`FrozenLayeredMonitor::save`] writes a versioned
//! container that [`FrozenLayeredMonitor::load`] restores — including
//! files written by the pre-layered [`FrozenMonitor::save`] format.
//!
//! ## Live updates
//!
//! The engine is not frozen forever: when an operator confirms an
//! out-of-pattern activation as benign, feed it back with
//! [`naps_core::Monitor::enrich`], re-freeze, and
//! [`MonitorEngine::publish`] the new snapshot.  Workers swap at
//! micro-batch boundaries — no request is lost, no lock is added to the
//! verdict hot path — and every verdict's [`EpochReport::epoch`] names
//! the zone set that judged it.  [`FrozenMonitor::save`] /
//! [`FrozenMonitor::load`] persist snapshots (epoch included) for warm
//! restarts.
//!
//! ## Graded verdicts & drift
//!
//! Every query API has a graded twin
//! ([`MonitorEngine::check_graded`] /
//! [`MonitorEngine::check_graded_batch`] /
//! [`MonitorEngine::submit_graded`]): the verdict additionally carries
//! the bounded Hamming distance to the predicted class's zone and a
//! ranked top-k of the nearest *other* classes' zones
//! ([`naps_core::GradedReport`]), computed by the budget-bounded
//! early-exit DP on the same immutable snapshots — still lock-free, and
//! bit-identical to sequential [`naps_core::Monitor::check_graded_batch`]
//! at the stamped epoch.  [`MonitorEngine::enable_drift`] arms per-class
//! [`naps_core::DriftDetector`]s over everything the engine serves;
//! sustained out-of-pattern elevation surfaces as an epoch-stamped
//! [`ClassDriftStatus`], the trigger for the enrich → publish loop
//! (publishing re-arms the detectors at the new epoch).
//!
//! ## Example
//!
//! ```
//! use naps_core::{ActivationMonitor, BddZone, MonitorBuilder};
//! use naps_nn::{mlp, Adam, TrainConfig, Trainer};
//! use naps_serve::{EngineConfig, MonitorEngine};
//! use naps_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Train a toy classifier and build its monitor (offline).
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = mlp(&[2, 8, 2], &mut rng);
//! let xs: Vec<Tensor> = (0..20)
//!     .map(|i| {
//!         let s = if i % 2 == 0 { 1.0 } else { -1.0 };
//!         Tensor::from_vec(vec![2], vec![s, s])
//!     })
//!     .collect();
//! let ys: Vec<usize> = (0..20).map(|i| i % 2).collect();
//! Trainer::new(TrainConfig { epochs: 40, batch_size: 4, verbose: false })
//!     .fit(&mut net, &xs, &ys, &mut Adam::new(0.05), &mut rng);
//! let monitor = MonitorBuilder::new(1, 1).build::<BddZone>(&mut net, &xs, &ys, 2);
//!
//! // Freeze + serve in parallel (online).
//! let engine = MonitorEngine::new(
//!     &monitor,
//!     &net,
//!     EngineConfig { workers: 2, max_batch: 8, queue_capacity: 64 },
//! )
//! .expect("MLPs replicate");
//! let reports = engine.check_batch(&xs).expect("engine is up");
//! assert_eq!(reports.len(), xs.len());
//! // Identical to the sequential monitor, input for input, and stamped
//! // with the zone epoch (0: nothing has been republished yet).
//! for (x, served) in xs.iter().zip(&reports) {
//!     assert_eq!(monitor.check(&mut net, x), served.report);
//!     assert_eq!(served.epoch, 0);
//! }
//! let stats = engine.shutdown();
//! assert_eq!(stats.processed, 20);
//! ```

mod engine;
mod frozen;

pub use engine::{
    ClassDriftStatus, EngineConfig, EngineError, EngineStats, EpochReport, LayerDriftStatus,
    LayeredEpochReport, LayeredVerdictTicket, MonitorEngine, SubmitError, VerdictTicket,
};
pub use frozen::{
    FrozenLayeredMonitor, FrozenMonitor, FrozenZone, LayeredVerdict, MonitorShard, PersistError,
};
