//! Property-based tests for the neural-network substrate: gradient
//! correctness against finite differences on random layer configurations,
//! loss invariants, and training-loop sanity.

use naps_nn::{softmax, softmax_cross_entropy, Dense, Layer, Relu};
use naps_tensor::Tensor;
use proptest::prelude::*;

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense input gradients match central finite differences for random
    /// weights and inputs (objective: sum of outputs).
    #[test]
    fn dense_input_gradient_is_correct(
        w in finite_vec(6),
        bvec in finite_vec(2),
        x in finite_vec(3),
    ) {
        let weights = Tensor::from_vec(vec![3, 2], w);
        let bias = Tensor::from_vec(vec![2], bvec);
        let mut layer = Dense::from_parts(weights, bias);
        let input = Tensor::from_vec(vec![1, 3], x.clone());
        let _ = layer.forward(&input, true);
        let g = layer.backward(&Tensor::ones(vec![1, 2]));
        let eps = 1e-2f32;
        for i in 0..3 {
            let mut xp = input.clone();
            xp.data_mut()[i] += eps;
            let mut xm = input.clone();
            xm.data_mut()[i] -= eps;
            let fp = layer.forward(&xp, true).sum();
            let fm = layer.forward(&xm, true).sum();
            let fd = (fp - fm) / (2.0 * eps);
            prop_assert!((g.data()[i] - fd).abs() < 0.05,
                "grad {} analytic {} fd {}", i, g.data()[i], fd);
        }
    }

    /// ReLU forward/backward satisfy the subgradient contract: outputs are
    /// max(0,x) and gradients vanish exactly where the output is zero.
    #[test]
    fn relu_forward_backward_contract(x in finite_vec(12)) {
        let mut relu = Relu::new();
        let input = Tensor::from_vec(vec![2, 6], x.clone());
        let y = relu.forward(&input, true);
        for (o, i) in y.data().iter().zip(&x) {
            prop_assert_eq!(*o, i.max(0.0));
        }
        let g = relu.backward(&Tensor::ones(vec![2, 6]));
        for (gi, i) in g.data().iter().zip(&x) {
            prop_assert_eq!(*gi, if *i > 0.0 { 1.0 } else { 0.0 });
        }
    }

    /// Softmax rows are probability distributions, invariant to shifts.
    #[test]
    fn softmax_is_a_distribution(x in finite_vec(8), shift in -5.0f32..5.0) {
        let logits = Tensor::from_vec(vec![2, 4], x.clone());
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let shifted = logits.map(|v| v + shift);
        let q = softmax(&shifted);
        for (a, b) in p.data().iter().zip(q.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Cross-entropy gradient rows sum to zero and the gradient matches
    /// finite differences at a random coordinate.
    #[test]
    fn cross_entropy_gradient_properties(
        x in finite_vec(6),
        label in 0usize..3,
        coord in 0usize..6,
    ) {
        let logits = Tensor::from_vec(vec![2, 3], x);
        let labels = [label, (label + 1) % 3];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {} sums to {}", r, s);
        }
        let eps = 1e-2f32;
        let mut lp = logits.clone();
        lp.data_mut()[coord] += eps;
        let mut lm = logits.clone();
        lm.data_mut()[coord] -= eps;
        let (fp, _) = softmax_cross_entropy(&lp, &labels);
        let (fm, _) = softmax_cross_entropy(&lm, &labels);
        let fd = (fp - fm) / (2.0 * eps);
        prop_assert!((grad.data()[coord] - fd).abs() < 5e-3,
            "coord {}: analytic {} fd {}", coord, grad.data()[coord], fd);
    }

    /// Matmul transposed variants agree with explicit transposition on
    /// random shapes.
    #[test]
    fn matmul_variants_agree(
        m in 1usize..4, k in 1usize..4, n in 1usize..4,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let b = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let c = Tensor::randn(vec![n, k], 1.0, &mut rng);
        let at = a.transpose();
        prop_assert_eq!(at.matmul_at(&b), a.matmul(&b));
        let explicit = a.matmul(&c.transpose());
        let fused = a.matmul_bt(&c);
        for (x, y) in explicit.data().iter().zip(fused.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Average pooling: the output mean equals the input mean (pooling is
    /// an exact partition of the input), and gradients match finite
    /// differences.
    #[test]
    fn avgpool_preserves_mean_and_gradients(x in finite_vec(16)) {
        use naps_nn::AvgPool2d;
        let mut pool = AvgPool2d::new(1, 4, 4, 2);
        let input = Tensor::from_vec(vec![1, 16], x.clone());
        let y = pool.forward(&input, false);
        let in_mean: f32 = x.iter().sum::<f32>() / 16.0;
        let out_mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        prop_assert!((in_mean - out_mean).abs() < 1e-4);

        let g = pool.backward(&Tensor::ones(vec![1, 4]));
        let eps = 1e-2f32;
        for i in 0..16 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fp = pool.forward(&Tensor::from_vec(vec![1, 16], xp), false).sum();
            let fm = pool.forward(&Tensor::from_vec(vec![1, 16], xm), false).sum();
            let fd = (fp - fm) / (2.0 * eps);
            prop_assert!((g.data()[i] - fd).abs() < 0.05,
                "grad {} analytic {} fd {}", i, g.data()[i], fd);
        }
    }

    /// Learning-rate schedules stay within (0, base] and cosine decay is
    /// monotone non-increasing.
    #[test]
    fn schedules_stay_bounded(base in 1e-4f32..1.0, every in 1usize..10, total in 1usize..50) {
        use naps_nn::{CosineDecay, LrSchedule, StepDecay};
        let step = StepDecay::new(every, 0.5);
        let cosine = CosineDecay::new(total, base * 1e-3);
        let mut prev_cos = f32::INFINITY;
        for epoch in 0..60 {
            let s = step.lr_at(epoch, base);
            prop_assert!(s > 0.0 && s <= base);
            let c = cosine.lr_at(epoch, base);
            prop_assert!(c > 0.0 && c <= base + 1e-9);
            prop_assert!(c <= prev_cos + 1e-6, "cosine rose at epoch {}", epoch);
            prev_cos = c;
        }
    }

    /// Activation moments: variance is non-negative and the mean of a
    /// constant batch is that constant with zero variance.
    #[test]
    fn activation_moments_basic_laws(vals in finite_vec(4), n in 1usize..6) {
        use naps_nn::{activation_moments, Sequential};
        // Identity dense layer, 4 -> 4.
        let mut w = vec![0.0f32; 16];
        for i in 0..4 {
            w[i * 4 + i] = 1.0;
        }
        let dense = Dense::from_parts(
            Tensor::from_vec(vec![4, 4], w),
            Tensor::zeros(vec![4]),
        );
        let mut net = Sequential::new(vec![Box::new(dense)]);
        let xs: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_vec(vec![4], vals.clone()))
            .collect();
        let (mean, var) = activation_moments(&mut net, 0, &xs, 2);
        for (m, v) in mean.iter().zip(&vals) {
            prop_assert!((m - v).abs() < 1e-4);
        }
        for v in &var {
            prop_assert!(v.abs() < 1e-4, "constant batch must have zero variance");
        }
    }
}
