//! From-scratch CPU neural-network library for the `naps` reproduction.
//!
//! The paper (Cheng, Nührenberg, Yasuoka; DATE 2019) trains two
//! convolutional ReLU classifiers with PyTorch (Table I) and then monitors
//! the binary on/off pattern of one fully-connected ReLU layer.  This crate
//! provides the equivalent substrate:
//!
//! * trainable layers — [`Dense`], [`Conv2d`], [`MaxPool2d`],
//!   [`BatchNorm2d`], [`Relu`], [`Flatten`] — composed with [`Sequential`];
//! * softmax cross-entropy loss and [`Sgd`] / [`Adam`] optimizers;
//! * **activation taps**: [`Sequential::forward_observe_plan`] runs one
//!   forward pass that retains exactly the layers an [`ObservationPlan`]
//!   names (plus the logits) — the monitor family's only observation
//!   path — while [`Sequential::forward_all`] remains as the
//!   whole-depth diagnostics tap;
//! * **gradient saliency** (`∂n_c/∂n_i`, Section II of the paper) for
//!   selecting the most decision-relevant neurons to monitor, including the
//!   special case where the monitored layer feeds a linear output layer.
//!
//! # Example
//!
//! ```
//! use naps_nn::{Dense, Relu, Sequential, softmax_cross_entropy};
//! use naps_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 3, &mut rng)),
//! ]);
//! let x = Tensor::zeros(vec![2, 4]);
//! let logits = net.forward(&x, false);
//! assert_eq!(logits.shape(), &[2, 3]);
//! let (loss, _grad) = softmax_cross_entropy(&logits, &[0, 2]);
//! assert!(loss > 0.0);
//! ```

mod avgpool;
mod conv;
mod dense;
mod dropout;
mod layer;
mod leaky;
mod loss;
mod models;
mod norm;
mod observe;
mod optim;
mod pool;
mod prepared;
mod relu;
mod saliency;
mod schedule;
mod sequential;
mod serialize;
mod stats;
mod train;

pub use avgpool::AvgPool2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use layer::{Flatten, Layer, ParamGrad};
pub use leaky::LeakyRelu;
pub use loss::{accuracy, softmax, softmax_cross_entropy};
pub use models::{
    gtsrb_net, mlp, mnist_net, GTSRB_MONITOR_LAYER, GTSRB_MONITOR_WIDTH, MNIST_MONITOR_LAYER,
    MNIST_MONITOR_WIDTH,
};
pub use norm::BatchNorm2d;
pub use observe::ObservationPlan;
pub use optim::{Adam, Optimizer, Sgd};
pub use pool::MaxPool2d;
pub use prepared::{ForwardScratch, PreparedModel};
pub use relu::Relu;
pub use saliency::{saliency_by_backward, saliency_from_output_weights, top_k_fraction};
pub use schedule::{ConstantLr, CosineDecay, EarlyStop, LrSchedule, StepDecay};
pub use sequential::Sequential;
pub use serialize::{LayerSnapshot, ModelSnapshot, SnapshotError};
pub use stats::activation_moments;
pub use train::{FitOptions, TrainConfig, TrainReport, Trainer};
