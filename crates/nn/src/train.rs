//! Mini-batch training loop.

use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::Optimizer;
use crate::schedule::{EarlyStop, EarlyStopState, LrSchedule};
use crate::sequential::Sequential;
use naps_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters for [`Trainer::fit`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Print a line per epoch when `true`.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 32,
            verbose: false,
        }
    }
}

/// Per-epoch outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy after the final epoch.
    pub final_train_accuracy: f64,
    /// The epoch (0-based) at which early stopping fired, or `None` when
    /// all configured epochs ran.
    pub stopped_at: Option<usize>,
}

/// Optional knobs for [`Trainer::fit_with`].
#[derive(Debug, Default)]
pub struct FitOptions<'a> {
    /// Per-epoch learning-rate schedule (base rate taken from the
    /// optimizer when training starts).
    pub schedule: Option<&'a dyn LrSchedule>,
    /// Stop when the epoch loss plateaus.
    pub early_stop: Option<EarlyStop>,
}

/// Drives mini-batch gradient descent on a [`Sequential`] model.
///
/// Samples are flat feature vectors (`&[Tensor]`, each 1-D) with one label
/// each; the trainer assembles shuffled `[batch, features]` tensors.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// A trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Stacks `samples[indices]` into a `[n, features]` batch tensor.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or samples have inconsistent lengths.
    pub fn make_batch(samples: &[Tensor], indices: &[usize]) -> Tensor {
        assert!(!indices.is_empty(), "empty batch");
        let feat = samples[indices[0]].len();
        let mut data = Vec::with_capacity(indices.len() * feat);
        for &i in indices {
            assert_eq!(
                samples[i].len(),
                feat,
                "sample {i} has inconsistent feature count"
            );
            data.extend_from_slice(samples[i].data());
        }
        Tensor::from_vec(vec![indices.len(), feat], data)
    }

    /// Trains `model` on `(samples, labels)`.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != labels.len()` or the training set is
    /// empty.
    pub fn fit(
        &self,
        model: &mut Sequential,
        samples: &[Tensor],
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
        rng: &mut impl Rng,
    ) -> TrainReport {
        self.fit_with(
            model,
            samples,
            labels,
            optimizer,
            &FitOptions::default(),
            rng,
        )
    }

    /// Like [`Trainer::fit`], with a learning-rate schedule and/or early
    /// stopping (see [`FitOptions`]).  The optimizer's rate on entry is
    /// the schedule's base rate and is restored on exit.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != labels.len()` or the set is empty.
    pub fn fit_with(
        &self,
        model: &mut Sequential,
        samples: &[Tensor],
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
        options: &FitOptions<'_>,
        rng: &mut impl Rng,
    ) -> TrainReport {
        assert_eq!(samples.len(), labels.len(), "one label per sample");
        assert!(!samples.is_empty(), "empty training set");
        let base_lr = optimizer.lr();
        let mut stopper = options.early_stop.map(EarlyStopState::new);
        let mut stopped_at = None;
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            if let Some(schedule) = options.schedule {
                optimizer.set_lr(schedule.lr_at(epoch, base_lr));
            }
            order.shuffle(rng);
            let mut total_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let x = Self::make_batch(samples, chunk);
                let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let logits = model.forward(&x, true);
                let (loss, grad) = softmax_cross_entropy(&logits, &y);
                model.zero_grad();
                let _ = model.backward(&grad);
                optimizer.step(&mut model.params_mut());
                total_loss += loss;
                batches += 1;
            }
            let mean_loss = total_loss / batches as f32;
            if self.config.verbose {
                println!(
                    "epoch {:>3}: loss {mean_loss:.4} (lr {:.2e})",
                    epoch + 1,
                    optimizer.lr()
                );
            }
            epoch_losses.push(mean_loss);
            if let Some(st) = stopper.as_mut() {
                if st.update(mean_loss) {
                    stopped_at = Some(epoch);
                    break;
                }
            }
        }
        optimizer.set_lr(base_lr);
        let final_train_accuracy = self.evaluate(model, samples, labels);
        TrainReport {
            epoch_losses,
            final_train_accuracy,
            stopped_at,
        }
    }

    /// Classification accuracy of `model` on `(samples, labels)`, evaluated
    /// in inference mode in batches.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != labels.len()`.
    pub fn evaluate(&self, model: &mut Sequential, samples: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(samples.len(), labels.len(), "one label per sample");
        if samples.is_empty() {
            return 0.0;
        }
        let mut correct = 0.0f64;
        let mut seen = 0usize;
        let idx: Vec<usize> = (0..samples.len()).collect();
        for chunk in idx.chunks(self.config.batch_size.max(1)) {
            let x = Self::make_batch(samples, chunk);
            let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            let logits = model.forward(&x, false);
            correct += accuracy(&logits, &y) * chunk.len() as f64;
            seen += chunk.len();
        }
        correct / seen as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::optim::{Adam, Sgd};
    use crate::relu::Relu;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n_per_class: usize, rng: &mut StdRng) -> (Vec<Tensor>, Vec<usize>) {
        use naps_tensor::Randn;
        let centers = [(2.0f32, 2.0f32), (-2.0, -2.0), (2.0, -2.0)];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                let x = cx + 0.3 * rng.randn();
                let y = cy + 0.3 * rng.randn();
                xs.push(Tensor::from_vec(vec![2], vec![x, y]));
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn fit_reaches_high_accuracy_on_blobs() {
        let mut rng = StdRng::seed_from_u64(0);
        let (xs, ys) = blobs(30, &mut rng);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 3, &mut rng)),
        ]);
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 16,
            verbose: false,
        });
        let mut opt = Adam::new(0.01);
        let report = trainer.fit(&mut net, &xs, &ys, &mut opt, &mut rng);
        assert!(
            report.final_train_accuracy > 0.95,
            "accuracy {}",
            report.final_train_accuracy
        );
        // Loss should broadly decrease.
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn make_batch_stacks_rows() {
        let samples = vec![
            Tensor::from_vec(vec![2], vec![1., 2.]),
            Tensor::from_vec(vec![2], vec![3., 4.]),
        ];
        let b = Trainer::make_batch(&samples, &[1, 0]);
        assert_eq!(b.shape(), &[2, 2]);
        assert_eq!(b.data(), &[3., 4., 1., 2.]);
    }

    #[test]
    fn evaluate_on_perfectly_learned_data() {
        let mut rng = StdRng::seed_from_u64(7);
        let (xs, ys) = blobs(10, &mut rng);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 3, &mut rng)),
        ]);
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 8,
            verbose: false,
        });
        let mut opt = Adam::new(0.01);
        let _ = trainer.fit(&mut net, &xs, &ys, &mut opt, &mut rng);
        let acc = trainer.evaluate(&mut net, &xs, &ys);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn fit_with_schedule_decays_and_restores_lr() {
        use crate::schedule::StepDecay;
        let mut rng = StdRng::seed_from_u64(3);
        let (xs, ys) = blobs(20, &mut rng);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 12, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(12, 3, &mut rng)),
        ]);
        let trainer = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 16,
            verbose: false,
        });
        let mut opt = Adam::new(0.02);
        let schedule = StepDecay::new(5, 0.5);
        let report = trainer.fit_with(
            &mut net,
            &xs,
            &ys,
            &mut opt,
            &FitOptions {
                schedule: Some(&schedule),
                early_stop: None,
            },
            &mut rng,
        );
        use crate::optim::Optimizer as _;
        assert_eq!(opt.lr(), 0.02, "base rate not restored");
        assert_eq!(report.stopped_at, None);
        assert!(report.final_train_accuracy > 0.9);
    }

    #[test]
    fn fit_with_early_stop_halts_on_plateau() {
        use crate::schedule::EarlyStop;
        let mut rng = StdRng::seed_from_u64(5);
        let (xs, ys) = blobs(20, &mut rng);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 3, &mut rng)),
        ]);
        let trainer = Trainer::new(TrainConfig {
            epochs: 200,
            batch_size: 16,
            verbose: false,
        });
        let mut opt = Adam::new(0.02);
        let report = trainer.fit_with(
            &mut net,
            &xs,
            &ys,
            &mut opt,
            &FitOptions {
                schedule: None,
                early_stop: Some(EarlyStop::new(8, 1e-4)),
            },
            &mut rng,
        );
        // Easy blobs converge long before 200 epochs: the stopper fires
        // and the loss history is correspondingly short.
        let stopped = report.stopped_at.expect("should stop early");
        assert!(stopped < 199, "never stopped");
        assert_eq!(report.epoch_losses.len(), stopped + 1);
        assert!(report.final_train_accuracy > 0.9);
    }

    #[test]
    fn fit_without_options_matches_defaults() {
        let mut rng = StdRng::seed_from_u64(9);
        let (xs, ys) = blobs(5, &mut rng);
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 3, &mut rng))]);
        let trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 8,
            verbose: false,
        });
        let mut opt = Sgd::new(0.01, 0.9);
        let report = trainer.fit(&mut net, &xs, &ys, &mut opt, &mut rng);
        assert_eq!(report.stopped_at, None);
        assert_eq!(report.epoch_losses.len(), 2);
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn mismatched_labels_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, &mut rng))]);
        let trainer = Trainer::new(TrainConfig::default());
        let mut opt = Adam::new(0.01);
        let xs = vec![Tensor::zeros(vec![2])];
        let _ = trainer.fit(&mut net, &xs, &[], &mut opt, &mut rng);
    }
}
