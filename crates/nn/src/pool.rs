//! Non-overlapping max pooling (`MaxPool` in the paper's Table I).

use crate::layer::Layer;
use naps_tensor::{max_pool2d, max_pool2d_backward, Tensor};

/// 2-D max pooling with window = stride = `k` over `[c, h, w]` feature maps.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    /// Per-sample argmax indices from the last forward pass.
    cached_argmax: Vec<Vec<usize>>,
}

impl MaxPool2d {
    /// A pooling layer over `[c, h, w]` maps with window `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the spatial extent.
    pub fn new(c: usize, h: usize, w: usize, k: usize) -> Self {
        assert!(k > 0 && k <= h && k <= w, "invalid pooling window {k}");
        MaxPool2d {
            c,
            h,
            w,
            k,
            cached_argmax: Vec::new(),
        }
    }

    /// Pooled output height.
    pub fn out_h(&self) -> usize {
        self.h / self.k
    }

    /// Pooled output width.
    pub fn out_w(&self) -> usize {
        self.w / self.k
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let batch = x.shape()[0];
        let in_len = self.c * self.h * self.w;
        assert_eq!(
            x.shape()[1],
            in_len,
            "pool expected {in_len} input features, got {:?}",
            x.shape()
        );
        let out_len = self.c * self.out_h() * self.out_w();
        let mut out = Tensor::zeros(vec![batch, out_len]);
        self.cached_argmax.clear();
        for s in 0..batch {
            let sample = Tensor::from_vec(vec![self.c, self.h, self.w], x.row(s).to_vec());
            let (pooled, arg) = max_pool2d(&sample, self.c, self.h, self.w, self.k);
            out.data_mut()[s * out_len..(s + 1) * out_len].copy_from_slice(pooled.data());
            self.cached_argmax.push(arg);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cached_argmax.is_empty(),
            "backward called before forward"
        );
        let batch = grad_out.shape()[0];
        assert_eq!(batch, self.cached_argmax.len(), "batch size changed");
        let in_len = self.c * self.h * self.w;
        let out_len = self.c * self.out_h() * self.out_w();
        let mut grad_in = Tensor::zeros(vec![batch, in_len]);
        for s in 0..batch {
            let g = Tensor::from_vec(vec![out_len], grad_out.row(s).to_vec());
            let gi = max_pool2d_backward(&g, &self.cached_argmax[s], in_len);
            grad_in.data_mut()[s * in_len..(s + 1) * in_len].copy_from_slice(gi.data());
        }
        grad_in
    }

    fn output_len(&self) -> usize {
        self.c * self.out_h() * self.out_w()
    }

    fn label(&self) -> String {
        "maxpool".to_owned()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_pools_per_sample() {
        let mut p = MaxPool2d::new(1, 2, 2, 2);
        let x = Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., 8., 6., 7., 5.]);
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[2, 1]);
        assert_eq!(y.data(), &[4., 8.]);
    }

    #[test]
    fn backward_routes_gradients_to_maxima() {
        let mut p = MaxPool2d::new(1, 2, 2, 2);
        let x = Tensor::from_vec(vec![1, 4], vec![1., 9., 3., 4.]);
        let _ = p.forward(&x, true);
        let g = Tensor::from_vec(vec![1, 1], vec![5.0]);
        let gx = p.backward(&g);
        assert_eq!(gx.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn geometry_matches_paper() {
        // 24x24x40 pooled 2x2 -> 12x12x40.
        let p = MaxPool2d::new(40, 24, 24, 2);
        assert_eq!(p.output_len(), 40 * 12 * 12);
    }
}
