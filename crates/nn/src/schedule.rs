//! Learning-rate schedules and early stopping for [`crate::Trainer`].
//!
//! The paper trains its two networks to near-saturated training accuracy
//! (Table I) — exactly the regime where a decaying learning rate and an
//! early-stopping criterion save wall-clock without changing the monitor
//! story.  Schedules map an epoch index to a learning-rate multiple of
//! the optimizer's base rate; [`EarlyStop`] halts training when the
//! epoch loss stops improving.

/// Maps an epoch index to the learning rate for that epoch.
///
/// `base_lr` is the optimizer's rate at the start of training; epoch
/// indices are 0-based.
pub trait LrSchedule: std::fmt::Debug {
    /// Learning rate to use for `epoch`.
    fn lr_at(&self, epoch: usize, base_lr: f32) -> f32;
}

/// The trivial schedule: the base rate, every epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstantLr;

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize, base_lr: f32) -> f32 {
        base_lr
    }
}

/// Multiplies the rate by `factor` every `every` epochs (classic step
/// decay).
///
/// # Example
///
/// ```
/// use naps_nn::{LrSchedule, StepDecay};
///
/// let s = StepDecay::new(10, 0.5);
/// assert_eq!(s.lr_at(0, 1.0), 1.0);
/// assert_eq!(s.lr_at(10, 1.0), 0.5);
/// assert_eq!(s.lr_at(25, 1.0), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    every: usize,
    factor: f32,
}

impl StepDecay {
    /// Decay by `factor` every `every` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero or `factor` is not in `(0, 1]`.
    pub fn new(every: usize, factor: f32) -> Self {
        assert!(every > 0, "decay interval must be positive");
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        StepDecay { every, factor }
    }
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, epoch: usize, base_lr: f32) -> f32 {
        base_lr * self.factor.powi((epoch / self.every) as i32)
    }
}

/// Cosine annealing from the base rate down to `min_lr` over
/// `total_epochs` (Loshchilov & Hutter, without restarts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineDecay {
    total_epochs: usize,
    min_lr: f32,
}

impl CosineDecay {
    /// Anneal over `total_epochs` to a floor of `min_lr`.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs` is zero or `min_lr` is negative.
    pub fn new(total_epochs: usize, min_lr: f32) -> Self {
        assert!(total_epochs > 0, "schedule length must be positive");
        assert!(min_lr >= 0.0, "floor must be non-negative");
        CosineDecay {
            total_epochs,
            min_lr,
        }
    }
}

impl LrSchedule for CosineDecay {
    fn lr_at(&self, epoch: usize, base_lr: f32) -> f32 {
        let t = (epoch.min(self.total_epochs) as f32) / self.total_epochs as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_lr + (base_lr - self.min_lr) * cos
    }
}

/// Stops training when the epoch loss has not improved by at least
/// `min_delta` for `patience` consecutive epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Epochs without improvement tolerated before stopping.
    pub patience: usize,
    /// Minimum loss decrease that counts as improvement.
    pub min_delta: f32,
}

impl EarlyStop {
    /// An early-stopping criterion.
    ///
    /// # Panics
    ///
    /// Panics if `patience` is zero or `min_delta` is negative.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        assert!(patience > 0, "patience must be positive");
        assert!(min_delta >= 0.0, "min_delta must be non-negative");
        EarlyStop {
            patience,
            min_delta,
        }
    }
}

/// Tracks epoch losses against an [`EarlyStop`] criterion.
#[derive(Debug, Clone)]
pub(crate) struct EarlyStopState {
    criterion: EarlyStop,
    best: f32,
    stale: usize,
}

impl EarlyStopState {
    pub(crate) fn new(criterion: EarlyStop) -> Self {
        EarlyStopState {
            criterion,
            best: f32::INFINITY,
            stale: 0,
        }
    }

    /// Records one epoch loss; returns `true` when training should stop.
    pub(crate) fn update(&mut self, loss: f32) -> bool {
        if loss < self.best - self.criterion.min_delta {
            self.best = loss;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale >= self.criterion.patience
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = ConstantLr;
        for e in [0usize, 3, 100] {
            assert_eq!(s.lr_at(e, 0.01), 0.01);
        }
    }

    #[test]
    fn step_decay_is_piecewise_constant() {
        let s = StepDecay::new(5, 0.1);
        assert_eq!(s.lr_at(4, 1.0), 1.0);
        assert!((s.lr_at(5, 1.0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(9, 1.0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(10, 1.0) - 0.01).abs() < 1e-7);
    }

    #[test]
    fn cosine_starts_at_base_and_ends_at_floor() {
        let s = CosineDecay::new(20, 1e-4);
        assert!((s.lr_at(0, 0.1) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(20, 0.1) - 1e-4).abs() < 1e-7);
        // Past the horizon it stays at the floor.
        assert!((s.lr_at(50, 0.1) - 1e-4).abs() < 1e-7);
        // Monotone decreasing over the horizon.
        let mut prev = f32::INFINITY;
        for e in 0..=20 {
            let lr = s.lr_at(e, 0.1);
            assert!(lr <= prev + 1e-9, "lr rose at epoch {e}");
            prev = lr;
        }
    }

    #[test]
    fn early_stop_waits_out_patience() {
        let mut st = EarlyStopState::new(EarlyStop::new(2, 0.01));
        assert!(!st.update(1.0)); // improvement (from infinity)
        assert!(!st.update(0.5)); // improvement
        assert!(!st.update(0.495)); // below min_delta: stale 1
        assert!(st.update(0.5)); // stale 2 -> stop
    }

    #[test]
    fn early_stop_resets_on_improvement() {
        let mut st = EarlyStopState::new(EarlyStop::new(2, 0.0));
        assert!(!st.update(1.0));
        assert!(!st.update(1.0)); // stale 1
        assert!(!st.update(0.9)); // improvement resets
        assert!(!st.update(0.9)); // stale 1
        assert!(st.update(0.9)); // stale 2
    }

    #[test]
    #[should_panic(expected = "factor must be in (0, 1]")]
    fn step_decay_rejects_growth() {
        let _ = StepDecay::new(3, 1.5);
    }

    #[test]
    #[should_panic(expected = "patience must be positive")]
    fn early_stop_rejects_zero_patience() {
        let _ = EarlyStop::new(0, 0.1);
    }
}
