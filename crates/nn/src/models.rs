//! The paper's two network architectures (Table I) and a generic MLP
//! builder.

use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::layer::{Flatten, Layer};
use crate::norm::BatchNorm2d;
use crate::pool::MaxPool2d;
use crate::relu::Relu;
use crate::sequential::Sequential;
use naps_tensor::ConvDims;
use rand::Rng;

/// Index of the monitored layer of [`mnist_net`]: the ReLU after `fc(40)`.
///
/// `Sequential::forward_all(..)[MNIST_MONITOR_LAYER + 1]` is the monitored
/// activation (Table I highlights `ReLU(fc(40))` in bold).
pub const MNIST_MONITOR_LAYER: usize = 14;

/// Width of the monitored layer of [`mnist_net`] (`fc(40)`).
pub const MNIST_MONITOR_WIDTH: usize = 40;

/// Index of the monitored layer of [`gtsrb_net`]: the ReLU after `fc(84)`.
pub const GTSRB_MONITOR_LAYER: usize = 12;

/// Width of the monitored layer of [`gtsrb_net`] (`fc(84)`).
pub const GTSRB_MONITOR_WIDTH: usize = 84;

/// Network 1 of the paper (MNIST classifier):
///
/// `ReLU(Conv(40)), MaxPool, ReLU(Conv(20)), MaxPool, ReLU(fc(320)),
/// ReLU(fc(160)), ReLU(fc(80)), ReLU(fc(40)), fc(10)` over 1×28×28 inputs,
/// 5×5 kernels, stride 1, 2×2 max pooling.
///
/// The monitored layer is the ReLU after `fc(40)`
/// ([`MNIST_MONITOR_LAYER`]).
pub fn mnist_net(rng: &mut impl Rng) -> Sequential {
    let conv1 = ConvDims {
        in_c: 1,
        in_h: 28,
        in_w: 28,
        k: 5,
        s: 1,
    }; // -> 40 x 24 x 24
    let conv2 = ConvDims {
        in_c: 40,
        in_h: 12,
        in_w: 12,
        k: 5,
        s: 1,
    }; // -> 20 x 8 x 8
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(conv1, 40, rng)),   // 0
        Box::new(Relu::new()),                   // 1
        Box::new(MaxPool2d::new(40, 24, 24, 2)), // 2  -> 40x12x12
        Box::new(Conv2d::new(conv2, 20, rng)),   // 3
        Box::new(Relu::new()),                   // 4
        Box::new(MaxPool2d::new(20, 8, 8, 2)),   // 5  -> 20x4x4 = 320
        Box::new(Flatten::new(320)),             // 6
        Box::new(Dense::new(320, 320, rng)),     // 7
        Box::new(Relu::new()),                   // 8
        Box::new(Dense::new(320, 160, rng)),     // 9
        Box::new(Relu::new()),                   // 10
        Box::new(Dense::new(160, 80, rng)),      // 11
        Box::new(Relu::new()),                   // 12
        Box::new(Dense::new(80, 40, rng)),       // 13
        Box::new(Relu::new()),                   // 14 <- monitored
        Box::new(Dense::new(40, 10, rng)),       // 15
    ];
    Sequential::new(layers)
}

/// Network 2 of the paper (GTSRB classifier):
///
/// `ReLU(BN(Conv(40))), MaxPool, ReLU(BN(Conv(20))), MaxPool,
/// ReLU(fc(240)), ReLU(fc(84)), fc(43)` over 3×32×32 inputs, 5×5 kernels,
/// stride 1, 2×2 max pooling.
///
/// The monitored layer is the ReLU after `fc(84)`
/// ([`GTSRB_MONITOR_LAYER`]); the paper monitors 25 % of its 84 neurons
/// selected by gradient saliency, for the stop-sign class `c = 14`.
pub fn gtsrb_net(rng: &mut impl Rng) -> Sequential {
    let conv1 = ConvDims {
        in_c: 3,
        in_h: 32,
        in_w: 32,
        k: 5,
        s: 1,
    }; // -> 40 x 28 x 28
    let conv2 = ConvDims {
        in_c: 40,
        in_h: 14,
        in_w: 14,
        k: 5,
        s: 1,
    }; // -> 20 x 10 x 10
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(conv1, 40, rng)),   // 0
        Box::new(BatchNorm2d::new(40, 28, 28)),  // 1
        Box::new(Relu::new()),                   // 2
        Box::new(MaxPool2d::new(40, 28, 28, 2)), // 3  -> 40x14x14
        Box::new(Conv2d::new(conv2, 20, rng)),   // 4
        Box::new(BatchNorm2d::new(20, 10, 10)),  // 5
        Box::new(Relu::new()),                   // 6
        Box::new(MaxPool2d::new(20, 10, 10, 2)), // 7  -> 20x5x5 = 500
        Box::new(Flatten::new(500)),             // 8
        Box::new(Dense::new(500, 240, rng)),     // 9
        Box::new(Relu::new()),                   // 10
        Box::new(Dense::new(240, 84, rng)),      // 11
        Box::new(Relu::new()),                   // 12 <- monitored
        Box::new(Dense::new(84, 43, rng)),       // 13
    ];
    Sequential::new(layers)
}

/// A plain ReLU multi-layer perceptron `dims[0] -> .. -> dims.last()`, with
/// ReLU after every layer except the last (linear logits).
///
/// Used by the front-car case study and throughout the test suite.
///
/// # Panics
///
/// Panics if fewer than two dimensions are given.
pub fn mlp(dims: &[usize], rng: &mut impl Rng) -> Sequential {
    assert!(
        dims.len() >= 2,
        "an MLP needs at least input and output dims"
    );
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for w in dims.windows(2).enumerate() {
        let (i, pair) = w;
        layers.push(Box::new(Dense::new(pair[0], pair[1], rng)));
        if i + 2 < dims.len() {
            layers.push(Box::new(Relu::new()));
        }
    }
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use naps_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mnist_net_shapes_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mnist_net(&mut rng);
        let x = Tensor::zeros(vec![1, 28 * 28]);
        let acts = net.forward_all(&x, false);
        assert_eq!(acts.last().unwrap().shape(), &[1, 10]);
        // Monitored activation is the 40-wide ReLU output.
        assert_eq!(acts[MNIST_MONITOR_LAYER + 1].shape(), &[1, 40]);
        assert_eq!(net.layer(MNIST_MONITOR_LAYER).label(), "relu");
        assert_eq!(net.layer(MNIST_MONITOR_LAYER - 1).label(), "fc(40)");
    }

    #[test]
    fn gtsrb_net_shapes_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = gtsrb_net(&mut rng);
        let x = Tensor::zeros(vec![1, 3 * 32 * 32]);
        let acts = net.forward_all(&x, false);
        assert_eq!(acts.last().unwrap().shape(), &[1, 43]);
        assert_eq!(acts[GTSRB_MONITOR_LAYER + 1].shape(), &[1, 84]);
        assert_eq!(net.layer(GTSRB_MONITOR_LAYER).label(), "relu");
        assert_eq!(net.layer(GTSRB_MONITOR_LAYER - 1).label(), "fc(84)");
    }

    #[test]
    fn mnist_summary_matches_table_1() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = mnist_net(&mut rng);
        let s = net.summary();
        assert!(s.contains("conv(40)"));
        assert!(s.contains("conv(20)"));
        assert!(s.contains("fc(320)"));
        assert!(s.contains("fc(40)"));
        assert!(s.ends_with("fc(10)"));
    }

    #[test]
    fn gtsrb_summary_matches_table_1() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = gtsrb_net(&mut rng);
        let s = net.summary();
        assert!(s.contains("bn"));
        assert!(s.contains("fc(240)"));
        assert!(s.contains("fc(84)"));
        assert!(s.ends_with("fc(43)"));
    }

    #[test]
    fn mlp_builder_alternates_dense_relu() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = mlp(&[4, 8, 8, 3], &mut rng);
        assert_eq!(net.summary(), "fc(8), relu, fc(8), relu, fc(3)");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = mlp(&[4], &mut rng);
    }
}
