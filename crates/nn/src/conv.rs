//! 2-D convolution lowered to matrix products via `im2col`.

use crate::layer::{Layer, ParamGrad};
use naps_tensor::{col2im, im2col_into, xavier_uniform, ConvDims, Tensor};
use rand::Rng;

/// A 2-D convolution with square kernel, stride as configured, no padding —
/// the `Conv(·)` of the paper's Table I (kernel 5×5, stride 1 there).
///
/// Batches flow as flat `[batch, in_c*in_h*in_w]` tensors in channel-major
/// (CHW) order; the layer re-interprets rows using its [`ConvDims`].
#[derive(Debug, Clone)]
pub struct Conv2d {
    dims: ConvDims,
    out_c: usize,
    /// Kernel `[out_c, in_c*k*k]`.
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    /// Cached im2col patch matrices, one per sample of the last batch
    /// (training only — inference reuses the scratch instead).
    cached_patches: Vec<Tensor>,
    /// Reused forward-pass workspace (allocation-free after warm-up).
    scratch: ConvScratch,
}

/// Per-layer forward scratch: the sample view, its im2col patch matrix,
/// the GEMM output, and the `w^T` panel packed once per call instead of
/// once per sample inside `matmul_bt`.
#[derive(Debug, Clone, Default)]
struct ConvScratch {
    sample: Tensor,
    patches: Tensor,
    y: Tensor,
    wt: Tensor,
}

impl Conv2d {
    /// A convolution layer with Xavier-initialised kernels.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the configured input geometry.
    pub fn new(dims: ConvDims, out_c: usize, rng: &mut impl Rng) -> Self {
        dims.validate();
        let fan_in = dims.cols();
        let fan_out = out_c * dims.k * dims.k;
        Conv2d {
            dims,
            out_c,
            w: xavier_uniform(vec![out_c, dims.cols()], fan_in, fan_out, rng),
            b: Tensor::zeros(vec![out_c]),
            grad_w: Tensor::zeros(vec![out_c, dims.cols()]),
            grad_b: Tensor::zeros(vec![out_c]),
            cached_patches: Vec::new(),
            scratch: ConvScratch::default(),
        }
    }

    /// The convolution geometry.
    pub fn dims(&self) -> ConvDims {
        self.dims
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Flat output length per sample: `out_c * out_h * out_w`.
    pub fn out_len(&self) -> usize {
        self.out_c * self.dims.rows()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let batch = x.shape()[0];
        let in_len = self.dims.in_c * self.dims.in_h * self.dims.in_w;
        assert_eq!(
            x.shape()[1],
            in_len,
            "conv expected {in_len} input features, got {:?}",
            x.shape()
        );
        let rows = self.dims.rows();
        let mut out = Tensor::zeros(vec![batch, self.out_len()]);
        self.cached_patches.clear();
        // Pack `w^T` once per call — `matmul_bt` would re-pack it per
        // sample.  Same transpose + same GEMM, so bit-identical results.
        self.w.transpose_into(&mut self.scratch.wt);
        let sample_shape = [self.dims.in_c, self.dims.in_h, self.dims.in_w];
        for s in 0..batch {
            self.scratch.sample.resize_in_place(&sample_shape);
            self.scratch.sample.data_mut().copy_from_slice(x.row(s));
            im2col_into(&self.scratch.sample, self.dims, &mut self.scratch.patches);
            // [rows, cols] @ [cols, out_c] -> [rows, out_c]
            self.scratch
                .patches
                .matmul_into(&self.scratch.wt, &mut self.scratch.y);
            let y = &self.scratch.y;
            let dst = out.data_mut();
            let base = s * self.out_c * rows;
            for c in 0..self.out_c {
                let bias = self.b.data()[c];
                for r in 0..rows {
                    dst[base + c * rows + r] = y.at2(r, c) + bias;
                }
            }
            if train {
                // Backward needs each sample's owned patch matrix.
                self.cached_patches.push(self.scratch.patches.clone());
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cached_patches.is_empty(),
            "backward called before forward"
        );
        let batch = grad_out.shape()[0];
        assert_eq!(batch, self.cached_patches.len(), "batch size changed");
        let rows = self.dims.rows();
        let in_len = self.dims.in_c * self.dims.in_h * self.dims.in_w;
        let mut grad_in = Tensor::zeros(vec![batch, in_len]);
        for s in 0..batch {
            // Reassemble [rows, out_c] position-major gradient.
            let gflat = grad_out.row(s);
            let mut gpos = Tensor::zeros(vec![rows, self.out_c]);
            for c in 0..self.out_c {
                for r in 0..rows {
                    gpos.set2(r, c, gflat[c * rows + r]);
                }
            }
            let patches = &self.cached_patches[s];
            // dW += gpos^T @ patches  -> [out_c, cols]
            let gw = gpos.matmul_at(patches);
            self.grad_w.add_assign(&gw);
            // db += column sums of gpos.
            let gb = gpos.sum_rows();
            self.grad_b.add_assign(&gb);
            // dPatches = gpos @ W -> [rows, cols]; scatter back.
            let gp = gpos.matmul(&self.w);
            let gi = col2im(&gp, self.dims);
            grad_in.data_mut()[s * in_len..(s + 1) * in_len].copy_from_slice(gi.data());
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                param: &mut self.w,
                grad: &mut self.grad_w,
            },
            ParamGrad {
                param: &mut self.b,
                grad: &mut self.grad_b,
            },
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_w.scale(0.0);
        self.grad_b.scale(0.0);
    }

    fn output_len(&self) -> usize {
        self.out_len()
    }

    fn label(&self) -> String {
        format!("conv({})", self.out_c)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dims() -> ConvDims {
        ConvDims {
            in_c: 1,
            in_h: 3,
            in_w: 3,
            k: 2,
            s: 1,
        }
    }

    #[test]
    fn forward_computes_cross_correlation() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(tiny_dims(), 1, &mut rng);
        // Kernel that picks the top-left pixel of each patch.
        conv.w = Tensor::from_vec(vec![1, 4], vec![1., 0., 0., 0.]);
        conv.b = Tensor::from_vec(vec![1], vec![0.5]);
        let x = Tensor::from_vec(vec![1, 9], (1..=9).map(|i| i as f32).collect());
        let y = conv.forward(&x, true);
        // Patch top-left values: 1,2,4,5; plus bias.
        assert_eq!(y.data(), &[1.5, 2.5, 4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(9);
        let dims = ConvDims {
            in_c: 2,
            in_h: 4,
            in_w: 4,
            k: 3,
            s: 1,
        };
        let mut conv = Conv2d::new(dims, 3, &mut rng);
        let x = Tensor::randn(vec![2, 32], 1.0, &mut rng);
        let _ = conv.forward(&x, true);
        let ones = Tensor::ones(vec![2, conv.out_len()]);
        let gx = conv.backward(&ones);

        let eps = 1e-2;
        // Spot-check a few input coordinates.
        for &i in &[0usize, 7, 31, 40, 63] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = conv.forward(&xp, true).sum();
            let ym = conv.forward(&xm, true).sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (gx.data()[i] - fd).abs() < 1e-1,
                "input grad {i}: analytic {} vs fd {fd}",
                gx.data()[i]
            );
        }
        // And a few weight coordinates.
        let mut conv2 = Conv2d::new(dims, 3, &mut rng);
        let _ = conv2.forward(&x, true);
        let _ = conv2.backward(&ones);
        let analytic = conv2.grad_w.clone();
        for &i in &[0usize, 5, 17, 53] {
            let orig = conv2.w.data()[i];
            conv2.w.data_mut()[i] = orig + eps;
            let yp = conv2.forward(&x, true).sum();
            conv2.w.data_mut()[i] = orig - eps;
            let ym = conv2.forward(&x, true).sum();
            conv2.w.data_mut()[i] = orig;
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (analytic.data()[i] - fd).abs() < 1e-1,
                "weight grad {i}: analytic {} vs fd {fd}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn paper_geometry_mnist_first_conv() {
        let mut rng = StdRng::seed_from_u64(0);
        let dims = ConvDims {
            in_c: 1,
            in_h: 28,
            in_w: 28,
            k: 5,
            s: 1,
        };
        let conv = Conv2d::new(dims, 40, &mut rng);
        assert_eq!(conv.out_len(), 40 * 24 * 24);
        assert_eq!(conv.label(), "conv(40)");
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_input_length_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(tiny_dims(), 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(vec![1, 8]), true);
    }
}
