//! Per-neuron activation statistics over a dataset.
//!
//! Gradient saliency (Section II of the paper) ranks neurons by their
//! influence on the decision output; an alternative, data-driven ranking
//! is how much a neuron actually *varies* over the training set — a
//! neuron that is always on (or always off) contributes no information
//! to an on/off pattern monitor.  [`activation_moments`] computes the
//! mean and variance each ranking needs.

use crate::sequential::Sequential;
use naps_tensor::Tensor;

/// Per-neuron mean and (population) variance of the output of `layer`
/// over `samples`, evaluated in inference mode in batches.
///
/// The monitored activation is `forward_all(..)[layer + 1]`, matching the
/// convention of `naps-core`'s monitor builder.
///
/// # Panics
///
/// Panics if `samples` is empty, `batch_size` is zero, or `layer` is out
/// of range.
///
/// # Example
///
/// ```
/// use naps_nn::{activation_moments, mlp};
/// use naps_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = mlp(&[2, 6, 2], &mut rng);
/// let xs = vec![
///     Tensor::from_vec(vec![2], vec![1.0, -1.0]),
///     Tensor::from_vec(vec![2], vec![-1.0, 1.0]),
/// ];
/// let (mean, var) = activation_moments(&mut net, 1, &xs, 8);
/// assert_eq!(mean.len(), 6);
/// assert!(var.iter().all(|&v| v >= 0.0));
/// ```
pub fn activation_moments(
    model: &mut Sequential,
    layer: usize,
    samples: &[Tensor],
    batch_size: usize,
) -> (Vec<f32>, Vec<f32>) {
    assert!(!samples.is_empty(), "empty sample set");
    assert!(batch_size > 0, "batch size must be positive");
    assert!(layer < model.len(), "layer out of range");

    let mut sum: Vec<f64> = Vec::new();
    let mut sum_sq: Vec<f64> = Vec::new();
    let mut count = 0usize;
    let indices: Vec<usize> = (0..samples.len()).collect();
    for chunk in indices.chunks(batch_size) {
        let feat = samples[chunk[0]].len();
        let mut data = Vec::with_capacity(chunk.len() * feat);
        for &i in chunk {
            data.extend_from_slice(samples[i].data());
        }
        let batch = Tensor::from_vec(vec![chunk.len(), feat], data);
        let acts = model.forward_all(&batch, false);
        let monitored = &acts[layer + 1];
        let width = monitored.shape()[1];
        if sum.is_empty() {
            sum = vec![0.0; width];
            sum_sq = vec![0.0; width];
        }
        for r in 0..chunk.len() {
            for (i, &v) in monitored.row(r).iter().enumerate() {
                let v = f64::from(v);
                sum[i] += v;
                sum_sq[i] += v * v;
            }
        }
        count += chunk.len();
    }
    let n = count as f64;
    let mean: Vec<f32> = sum.iter().map(|&s| (s / n) as f32).collect();
    let var: Vec<f32> = sum
        .iter()
        .zip(&sum_sq)
        .map(|(&s, &ss)| ((ss / n - (s / n) * (s / n)).max(0.0)) as f32)
        .collect();
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::relu::Relu;

    /// A fixed 2->2 "network" (identity weights) so moments are exact.
    fn identity_net() -> Sequential {
        let w = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let d = Dense::from_parts(w, Tensor::zeros(vec![2]));
        Sequential::new(vec![Box::new(d), Box::new(Relu::new())])
    }

    #[test]
    fn moments_match_hand_computation() {
        let mut net = identity_net();
        let xs = vec![
            Tensor::from_vec(vec![2], vec![1.0, 2.0]),
            Tensor::from_vec(vec![2], vec![3.0, 2.0]),
        ];
        // Layer 0 output (pre-ReLU) equals the inputs.
        let (mean, var) = activation_moments(&mut net, 0, &xs, 1);
        assert_eq!(mean, vec![2.0, 2.0]);
        assert_eq!(var, vec![1.0, 0.0]);
    }

    #[test]
    fn batching_does_not_change_moments() {
        let mut net = identity_net();
        let xs: Vec<Tensor> = (0..7)
            .map(|i| Tensor::from_vec(vec![2], vec![i as f32, -(i as f32)]))
            .collect();
        let (m1, v1) = activation_moments(&mut net, 1, &xs, 1);
        let (m2, v2) = activation_moments(&mut net, 1, &xs, 4);
        for (a, b) in m1.iter().zip(&m2) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in v1.iter().zip(&v2) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn relu_layer_moments_are_nonnegative() {
        let mut net = identity_net();
        let xs = vec![
            Tensor::from_vec(vec![2], vec![-5.0, 1.0]),
            Tensor::from_vec(vec![2], vec![-3.0, 2.0]),
        ];
        let (mean, var) = activation_moments(&mut net, 1, &xs, 8);
        assert_eq!(mean[0], 0.0, "ReLU clamps the negative neuron");
        assert_eq!(var[0], 0.0);
        assert!(mean[1] > 0.0 && var[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_samples_panic() {
        let mut net = identity_net();
        let _ = activation_moments(&mut net, 0, &[], 4);
    }

    #[test]
    #[should_panic(expected = "layer out of range")]
    fn bad_layer_panics() {
        let mut net = identity_net();
        let xs = vec![Tensor::zeros(vec![2])];
        let _ = activation_moments(&mut net, 5, &xs, 4);
    }
}
