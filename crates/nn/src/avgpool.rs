//! Non-overlapping average pooling.
//!
//! The paper's Table I networks use max pooling, but average pooling is
//! the other standard down-sampling choice in the network families the
//! monitor targets; having both lets the examples and ablations vary the
//! backbone without leaving the crate.

use crate::layer::Layer;
use naps_tensor::Tensor;

/// 2-D average pooling with window = stride = `k` over `[c, h, w]`
/// feature maps.
///
/// # Example
///
/// ```
/// use naps_nn::{AvgPool2d, Layer};
/// use naps_tensor::Tensor;
///
/// let mut pool = AvgPool2d::new(1, 2, 2, 2);
/// let x = Tensor::from_vec(vec![1, 4], vec![1.0, 2.0, 3.0, 6.0]);
/// let y = pool.forward(&x, false);
/// assert_eq!(y.data(), &[3.0]); // mean of the 2×2 window
/// ```
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    last_batch: usize,
}

impl AvgPool2d {
    /// An average-pooling layer over `[c, h, w]` maps with window `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the spatial extent.
    pub fn new(c: usize, h: usize, w: usize, k: usize) -> Self {
        assert!(k > 0 && k <= h && k <= w, "invalid pooling window {k}");
        AvgPool2d {
            c,
            h,
            w,
            k,
            last_batch: 0,
        }
    }

    /// Pooled output height.
    pub fn out_h(&self) -> usize {
        self.h / self.k
    }

    /// Pooled output width.
    pub fn out_w(&self) -> usize {
        self.w / self.k
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let batch = x.shape()[0];
        let in_len = self.c * self.h * self.w;
        assert_eq!(
            x.shape()[1],
            in_len,
            "pool expected {in_len} input features, got {:?}",
            x.shape()
        );
        self.last_batch = batch;
        let (oh, ow) = (self.out_h(), self.out_w());
        let out_len = self.c * oh * ow;
        let inv = 1.0 / (self.k * self.k) as f32;
        let mut out = Tensor::zeros(vec![batch, out_len]);
        for s in 0..batch {
            let row = x.row(s);
            let orow = &mut out.data_mut()[s * out_len..(s + 1) * out_len];
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut sum = 0.0f32;
                        for dy in 0..self.k {
                            for dx in 0..self.k {
                                let y = oy * self.k + dy;
                                let xx = ox * self.k + dx;
                                sum += row[c * self.h * self.w + y * self.w + xx];
                            }
                        }
                        orow[c * oh * ow + oy * ow + ox] = sum * inv;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(self.last_batch > 0, "backward called before forward");
        let batch = grad_out.shape()[0];
        assert_eq!(batch, self.last_batch, "batch size changed");
        let in_len = self.c * self.h * self.w;
        let (oh, ow) = (self.out_h(), self.out_w());
        let out_len = self.c * oh * ow;
        assert_eq!(grad_out.shape()[1], out_len, "gradient width mismatch");
        let inv = 1.0 / (self.k * self.k) as f32;
        let mut grad_in = Tensor::zeros(vec![batch, in_len]);
        for s in 0..batch {
            let grow = grad_out.row(s);
            let irow = &mut grad_in.data_mut()[s * in_len..(s + 1) * in_len];
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grow[c * oh * ow + oy * ow + ox] * inv;
                        for dy in 0..self.k {
                            for dx in 0..self.k {
                                let y = oy * self.k + dy;
                                let xx = ox * self.k + dx;
                                irow[c * self.h * self.w + y * self.w + xx] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn output_len(&self) -> usize {
        self.c * self.out_h() * self.out_w()
    }

    fn label(&self) -> String {
        format!("AvgPool({}x{})", self.k, self.k)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_averages_windows() {
        // 1 channel, 4×4, window 2 -> four window means.
        let mut pool = AvgPool2d::new(1, 4, 4, 2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![1, 16], vec![
            1.0, 2.0,   3.0, 4.0,
            5.0, 6.0,   7.0, 8.0,

            1.0, 1.0,   0.0, 0.0,
            1.0, 1.0,   0.0, 4.0,
        ]);
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 4]);
        assert_eq!(y.data(), &[3.5, 5.5, 1.0, 1.0]);
    }

    #[test]
    fn forward_handles_channels_and_batches() {
        let mut pool = AvgPool2d::new(2, 2, 2, 2);
        let x = Tensor::from_vec(
            vec![2, 8],
            vec![
                // sample 0: channel 0 all 1s, channel 1 all 3s
                1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0, // sample 1: ramps
                0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0,
            ],
        );
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[1.0, 3.0, 1.5, 5.5]);
        assert_eq!(pool.output_len(), 2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut pool = AvgPool2d::new(1, 4, 4, 2);
        let x0: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let x = Tensor::from_vec(vec![1, 16], x0.clone());
        // Scalar loss: weighted sum of the pooled outputs.
        let w = [0.7f32, -1.3, 0.2, 2.1];
        let loss = |pool: &mut AvgPool2d, data: &[f32]| -> f32 {
            let t = Tensor::from_vec(vec![1, 16], data.to_vec());
            let y = pool.forward(&t, false);
            y.data().iter().zip(&w).map(|(a, b)| a * b).sum()
        };
        let _ = pool.forward(&x, false);
        let grad_out = Tensor::from_vec(vec![1, 4], w.to_vec());
        let analytic = pool.backward(&grad_out);
        let eps = 1e-3f32;
        for i in 0..16 {
            let mut plus = x0.clone();
            plus[i] += eps;
            let mut minus = x0.clone();
            minus[i] -= eps;
            let numeric = (loss(&mut pool, &plus) - loss(&mut pool, &minus)) / (2.0 * eps);
            let got = analytic.data()[i];
            assert!(
                (numeric - got).abs() < 1e-3,
                "grad[{i}]: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn label_and_geometry() {
        let pool = AvgPool2d::new(3, 8, 8, 2);
        assert_eq!(pool.label(), "AvgPool(2x2)");
        assert_eq!(pool.out_h(), 4);
        assert_eq!(pool.out_w(), 4);
        assert_eq!(pool.output_len(), 3 * 16);
    }

    #[test]
    #[should_panic(expected = "invalid pooling window")]
    fn oversized_window_panics() {
        let _ = AvgPool2d::new(1, 2, 2, 3);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut pool = AvgPool2d::new(1, 2, 2, 2);
        let _ = pool.backward(&Tensor::zeros(vec![1, 1]));
    }
}
