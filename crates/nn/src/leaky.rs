//! Leaky ReLU — one of the "ReLU variations" the paper's introduction
//! mentions.  The monitor requires true ReLU semantics (`prelu(x) = 1 ⇔
//! x > 0`) **at the monitored layer**; other layers are free to use leaky
//! variants, which is exactly the scalability argument of Section IV:
//! "arbitrary large networks with other nonlinear activation functions,
//! so long as the neurons being monitored are ReLU".

use crate::layer::Layer;
use naps_tensor::Tensor;

/// Elementwise `x if x > 0 else slope * x`.
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    slope: f32,
    mask: Option<Vec<bool>>,
    out_len: usize,
}

impl LeakyRelu {
    /// A leaky ReLU with the given negative-side slope.
    ///
    /// # Panics
    ///
    /// Panics if `slope` is not finite or not in `[0, 1)`.
    pub fn new(slope: f32) -> Self {
        assert!(
            slope.is_finite() && (0.0..1.0).contains(&slope),
            "slope must be in [0, 1), got {slope}"
        );
        LeakyRelu {
            slope,
            mask: None,
            out_len: 0,
        }
    }

    /// The negative-side slope.
    pub fn slope(&self) -> f32 {
        self.slope
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let slope = self.slope;
        let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
        let y = x.map(|v| if v > 0.0 { v } else { slope * v });
        self.out_len = x.shape().iter().skip(1).product();
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // naps-lint: allow(typed_errors, "Layer::backward contract: forward caches first; misuse is a caller bug, not a runtime error path")
        let mask = self.mask.as_ref().expect("backward called before forward");
        assert_eq!(
            mask.len(),
            grad_out.len(),
            "gradient shape changed between forward and backward"
        );
        let slope = self.slope;
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v *= slope;
            }
        }
        g
    }

    fn output_len(&self) -> usize {
        self.out_len
    }

    fn label(&self) -> String {
        format!("leaky_relu({})", self.slope)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_scales_negatives() {
        let mut l = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![1, 4], vec![-2.0, 0.0, 1.0, -0.5]);
        let y = l.forward(&x, true);
        assert_eq!(y.data(), &[-0.2, 0.0, 1.0, -0.05]);
    }

    #[test]
    fn backward_uses_slope_on_negative_side() {
        let mut l = LeakyRelu::new(0.2);
        let x = Tensor::from_vec(vec![1, 3], vec![-1.0, 2.0, 0.0]);
        let _ = l.forward(&x, true);
        let g = l.backward(&Tensor::ones(vec![1, 3]));
        assert_eq!(g.data(), &[0.2, 1.0, 0.2]);
    }

    #[test]
    fn zero_slope_equals_relu() {
        let mut leaky = LeakyRelu::new(0.0);
        let mut relu = crate::relu::Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-3.0, -0.1, 0.4, 7.0]);
        assert_eq!(leaky.forward(&x, true), relu.forward(&x, true));
    }

    #[test]
    #[should_panic(expected = "slope must be")]
    fn invalid_slope_panics() {
        let _ = LeakyRelu::new(1.5);
    }
}
