//! Rectified linear unit.
//!
//! The on/off pattern of a ReLU layer's output is exactly the paper's
//! neuron activation pattern (Definition 1): `prelu(x) = 1` iff `x > 0`.

use crate::layer::Layer;
use naps_tensor::Tensor;

/// Elementwise `max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    out_len: usize,
}

impl Relu {
    /// A fresh ReLU layer.
    pub fn new() -> Self {
        Relu {
            mask: None,
            out_len: 0,
        }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
        let y = x.map(|v| v.max(0.0));
        self.out_len = x.shape().iter().skip(1).product();
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // naps-lint: allow(typed_errors, "Layer::backward contract: forward caches first; misuse is a caller bug, not a runtime error path")
        let mask = self.mask.as_ref().expect("backward called before forward");
        assert_eq!(
            mask.len(),
            grad_out.len(),
            "gradient shape changed between forward and backward"
        );
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    fn output_len(&self) -> usize {
        self.out_len
    }

    fn label(&self) -> String {
        "relu".to_owned()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-1., 0., 0.5, 3.]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0., 0., 0.5, 3.]);
    }

    #[test]
    fn backward_masks_where_input_nonpositive() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-1., 0., 0.5, 3.]);
        let _ = r.forward(&x, true);
        let g = Tensor::ones(vec![1, 4]);
        let gx = r.backward(&g);
        assert_eq!(gx.data(), &[0., 0., 1., 1.]);
    }

    #[test]
    fn zero_input_is_off_matching_definition_1() {
        // prelu(0) = 0 in the paper; the gradient mask must agree.
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![1, 1], vec![0.0]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0]);
        let gx = r.backward(&Tensor::ones(vec![1, 1]));
        assert_eq!(gx.data(), &[0.0]);
    }
}
