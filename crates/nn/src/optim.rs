//! Optimizers: SGD with momentum and Adam.

use crate::layer::ParamGrad;
use naps_tensor::Tensor;

/// An optimizer updates parameters in place from their accumulated
/// gradients.  The parameter list must be passed in a stable order across
/// steps (as produced by [`crate::Sequential::params_mut`]), because
/// stateful optimizers track one state slot per position.
pub trait Optimizer {
    /// Applies one update step and leaves gradients untouched (call
    /// [`crate::Sequential::zero_grad`] afterwards).
    fn step(&mut self, params: &mut [ParamGrad<'_>]);

    /// The current learning rate.
    fn lr(&self) -> f32;

    /// Replaces the learning rate (used by [`crate::LrSchedule`]s between
    /// epochs; optimizer state such as momentum is unaffected).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// SGD with the given learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn step(&mut self, params: &mut [ParamGrad<'_>]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.param.shape().to_vec()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[i];
            for ((vv, &g), w) in v
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(p.param.data_mut().iter_mut())
            {
                *vv = self.momentum * *vv - self.lr * g;
                *w += *vv;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the given learning rate and default moments
    /// `(β1, β2, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn step(&mut self, params: &mut [ParamGrad<'_>]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.param.shape().to_vec()))
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for (((mm, vv), &g), w) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.grad.data())
                .zip(p.param.data_mut().iter_mut())
            {
                *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let mhat = *mm / bc1;
                let vhat = *vv / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Layer;
    use crate::loss::softmax_cross_entropy;
    use crate::sequential::Sequential;
    use naps_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimise f(w) = (w - 3)^2 via a fake ParamGrad.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut w = Tensor::from_vec(vec![1], vec![0.0]);
        let mut g = Tensor::zeros(vec![1]);
        for _ in 0..steps {
            g.data_mut()[0] = 2.0 * (w.data()[0] - 3.0);
            let mut params = [ParamGrad {
                param: &mut w,
                grad: &mut g,
            }];
            opt.step(&mut params);
        }
        w.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let w = quadratic_descent(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let w = quadratic_descent(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_fits_small_classification_problem() {
        // 2-class separable toy data; loss must drop substantially.
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 8, &mut rng)),
            Box::new(crate::relu::Relu::new()),
            Box::new(Dense::new(8, 2, &mut rng)),
        ]);
        let x = Tensor::from_vec(vec![4, 2], vec![1.0, 1.0, 0.9, 1.1, -1.0, -1.0, -1.1, -0.9]);
        let labels = [0usize, 0, 1, 1];
        let mut opt = Adam::new(0.05);
        let (loss0, _) = softmax_cross_entropy(&net.forward(&x, true), &labels);
        for _ in 0..100 {
            let logits = net.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.zero_grad();
            let _ = net.backward(&grad);
            opt.step(&mut net.params_mut());
        }
        let (loss1, _) = softmax_cross_entropy(&net.forward(&x, false), &labels);
        assert!(loss1 < loss0 * 0.1, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn optimizers_handle_param_free_layers() {
        let mut relu = crate::relu::Relu::new();
        let mut params = relu.params_mut();
        let mut opt = Adam::new(0.1);
        opt.step(&mut params); // must not panic on empty list
    }
}
