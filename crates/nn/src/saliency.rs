//! Gradient-based neuron saliency for monitor neuron selection.
//!
//! Section II of the paper: for layers with many neurons, monitor only the
//! subset whose influence `|∂n_c/∂n_i|` on the decision output `n_c` is
//! large.  Two routes are provided:
//!
//! * [`saliency_from_output_weights`] — the paper's special case: when the
//!   monitored layer feeds the (linear) output layer directly, the
//!   derivative is simply the connecting weight.
//! * [`saliency_by_backward`] — the general case: backpropagate a one-hot
//!   output gradient through the network suffix and read the gradient at
//!   the monitored layer's output, averaged over a probe batch.

use crate::dense::Dense;
use crate::sequential::Sequential;
use naps_tensor::Tensor;

/// Saliency of each monitored-layer neuron for class `class`, using the
/// paper's special case: the monitored layer is immediately before a linear
/// output [`Dense`] layer, so `∂n_c/∂n_i` is the weight `W[i, c]`.
///
/// Returns `|W[i, class]|` for each input neuron `i` of `output_layer`.
///
/// # Panics
///
/// Panics if `class` is not an output of `output_layer`.
pub fn saliency_from_output_weights(output_layer: &Dense, class: usize) -> Vec<f32> {
    let w = output_layer.weights();
    let (in_f, out_f) = (w.shape()[0], w.shape()[1]);
    assert!(
        class < out_f,
        "class {class} out of range for {out_f} outputs"
    );
    (0..in_f).map(|i| w.at2(i, class).abs()).collect()
}

/// General gradient saliency: mean `|∂logit_class/∂a_i|` over `probes`,
/// where `a` is the output of layer `monitored_layer`.
///
/// Runs one forward and one backward pass per call; accumulated parameter
/// gradients are cleared before returning.
///
/// # Panics
///
/// Panics if `monitored_layer` is out of range or `class` exceeds the
/// output width.
pub fn saliency_by_backward(
    model: &mut Sequential,
    probes: &Tensor,
    monitored_layer: usize,
    class: usize,
) -> Vec<f32> {
    assert!(
        monitored_layer < model.len(),
        "monitored layer {monitored_layer} out of range"
    );
    let acts = model.forward_all(probes, false);
    // naps-lint: allow(typed_errors, "forward_all always returns the input plus one activation per layer; never empty")
    let logits = acts.last().expect("nonempty activations");
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert!(
        class < classes,
        "class {class} out of range for {classes} outputs"
    );
    // One-hot gradient at the chosen logit, per sample.
    let mut onehot = Tensor::zeros(vec![batch, classes]);
    for r in 0..batch {
        onehot.set2(r, class, 1.0);
    }
    let grads = model.backward_all(&onehot);
    model.zero_grad();
    // Gradient w.r.t. the monitored layer's *output* = input of next layer.
    let g = &grads[monitored_layer + 1];
    let width = g.shape()[1];
    let mut sal = vec![0.0f32; width];
    for r in 0..batch {
        for (s, &v) in sal.iter_mut().zip(g.row(r)) {
            *s += v.abs();
        }
    }
    for s in &mut sal {
        *s /= batch as f32;
    }
    sal
}

/// Indices of the top `fraction` (0, 1] of neurons by saliency, sorted
/// ascending.  This mirrors the paper's GTSRB setting of monitoring 25 % of
/// the 84-neuron layer.
///
/// At least one neuron is always selected.
///
/// # Panics
///
/// Panics if `fraction` is not within `(0, 1]` or `saliency` is empty.
pub fn top_k_fraction(saliency: &[f32], fraction: f64) -> Vec<usize> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    assert!(!saliency.is_empty(), "empty saliency vector");
    let k = ((saliency.len() as f64 * fraction).round() as usize).clamp(1, saliency.len());
    let mut idx: Vec<usize> = (0..saliency.len()).collect();
    idx.sort_by(|&a, &b| {
        saliency[b]
            .partial_cmp(&saliency[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut top: Vec<usize> = idx.into_iter().take(k).collect();
    top.sort_unstable();
    top
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relu::Relu;
    use naps_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_weight_saliency_reads_column() {
        let w = Tensor::from_vec(vec![3, 2], vec![1., -4., 2., 5., -3., 0.5]);
        let b = Tensor::zeros(vec![2]);
        let d = Dense::from_parts(w, b);
        assert_eq!(saliency_from_output_weights(&d, 0), vec![1., 2., 3.]);
        assert_eq!(saliency_from_output_weights(&d, 1), vec![4., 5., 0.5]);
    }

    #[test]
    fn backward_saliency_matches_special_case_for_linear_suffix() {
        // Network: Dense(3->4), Relu, Dense(4->2). Monitor layer 1 (the
        // ReLU). With probes that keep every ReLU active, the gradient at
        // the ReLU output equals the output weight column.
        let mut rng = StdRng::seed_from_u64(0);
        let hidden = Dense::new(3, 4, &mut rng);
        let w_out = Tensor::from_vec(vec![4, 2], vec![0.5, -1.0, 2.0, 0.1, -0.7, 0.3, 1.5, -0.2]);
        let out = Dense::from_parts(w_out, Tensor::zeros(vec![2]));
        let expected = saliency_from_output_weights(&out, 1);
        let mut net = Sequential::new(vec![Box::new(hidden), Box::new(Relu::new()), Box::new(out)]);
        // Probe far into the positive orthant so ReLU mask is (likely) all
        // ones; use several probes to be safe.
        let probes = Tensor::from_vec(vec![2, 3], vec![5., 5., 5., 4., 6., 5.]);
        let acts = net.forward_all(&probes, false);
        let relu_out = &acts[2];
        if relu_out.data().iter().all(|&v| v > 0.0) {
            let sal = saliency_by_backward(&mut net, &probes, 1, 1);
            for (a, b) in sal.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-5, "saliency {a} vs weight {b}");
            }
        }
        // Regardless of masks, saliency is non-negative.
        let sal = saliency_by_backward(&mut net, &probes, 1, 0);
        assert!(sal.iter().all(|&s| s >= 0.0));
        assert_eq!(sal.len(), 4);
    }

    #[test]
    fn top_fraction_selects_strongest_quarter() {
        let sal = vec![0.1, 5.0, 0.2, 3.0, 0.05, 0.0, 1.0, 0.4];
        let top = top_k_fraction(&sal, 0.25);
        assert_eq!(top, vec![1, 3]); // 25% of 8 = 2 strongest, sorted
    }

    #[test]
    fn top_fraction_never_empty() {
        let sal = vec![0.3, 0.1];
        assert_eq!(top_k_fraction(&sal, 0.01), vec![0]);
    }

    #[test]
    fn full_fraction_selects_everything() {
        let sal = vec![1.0, 2.0, 3.0];
        assert_eq!(top_k_fraction(&sal, 1.0), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let _ = top_k_fraction(&[1.0], 0.0);
    }
}
