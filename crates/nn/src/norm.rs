//! Per-channel batch normalisation (`BN(·)` in the paper's Table I).

use crate::layer::{Layer, ParamGrad};
use naps_tensor::Tensor;

/// Batch normalisation over `[c, h, w]` feature maps: statistics are
/// computed per channel over the batch and spatial positions.
///
/// In training mode the layer normalises with batch statistics and updates
/// exponential running averages; in inference mode it uses the running
/// averages, so a single sample normalises deterministically.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    c: usize,
    hw: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Forward cache for backward.
    cached_xhat: Option<Tensor>,
    cached_inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// A batch-norm layer over `c` channels of `h*w`-pixel maps.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        BatchNorm2d {
            c,
            hw: h * w,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(vec![c]),
            beta: Tensor::zeros(vec![c]),
            grad_gamma: Tensor::zeros(vec![c]),
            grad_beta: Tensor::zeros(vec![c]),
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            cached_xhat: None,
            cached_inv_std: vec![0.0; c],
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let batch = x.shape()[0];
        let in_len = self.c * self.hw;
        assert_eq!(
            x.shape()[1],
            in_len,
            "batchnorm expected {in_len} input features, got {:?}",
            x.shape()
        );
        let m = (batch * self.hw) as f32;
        let mut out = x.clone();
        let mut xhat = Tensor::zeros(vec![batch, in_len]);
        for ch in 0..self.c {
            let (mean, var) = if train {
                let mut sum = 0.0f32;
                let mut sq = 0.0f32;
                for s in 0..batch {
                    for &v in &x.row(s)[ch * self.hw..(ch + 1) * self.hw] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / m;
                let var = (sq / m - mean * mean).max(0.0);
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.cached_inv_std[ch] = inv_std;
            let g = self.gamma.data()[ch];
            let b = self.beta.data()[ch];
            for s in 0..batch {
                let base = s * in_len + ch * self.hw;
                for i in 0..self.hw {
                    let xh = (x.data()[base + i] - mean) * inv_std;
                    xhat.data_mut()[base + i] = xh;
                    out.data_mut()[base + i] = g * xh + b;
                }
            }
        }
        self.cached_xhat = Some(xhat);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .as_ref()
            // naps-lint: allow(typed_errors, "Layer::backward contract: forward caches first; misuse is a caller bug, not a runtime error path")
            .expect("backward called before forward");
        let batch = grad_out.shape()[0];
        let in_len = self.c * self.hw;
        assert_eq!(
            grad_out.shape(),
            &[batch, in_len],
            "gradient shape mismatch"
        );
        let m = (batch * self.hw) as f32;
        let mut grad_in = Tensor::zeros(vec![batch, in_len]);
        for ch in 0..self.c {
            let g = self.gamma.data()[ch];
            let inv_std = self.cached_inv_std[ch];
            // Channel reductions.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for s in 0..batch {
                let base = s * in_len + ch * self.hw;
                for i in 0..self.hw {
                    let dy = grad_out.data()[base + i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * xhat.data()[base + i];
                }
            }
            self.grad_beta.data_mut()[ch] += sum_dy;
            self.grad_gamma.data_mut()[ch] += sum_dy_xhat;
            // dx = gamma * inv_std / m * (m*dy - sum_dy - xhat * sum_dy_xhat)
            for s in 0..batch {
                let base = s * in_len + ch * self.hw;
                for i in 0..self.hw {
                    let dy = grad_out.data()[base + i];
                    let xh = xhat.data()[base + i];
                    grad_in.data_mut()[base + i] =
                        g * inv_std / m * (m * dy - sum_dy - xh * sum_dy_xhat);
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                param: &mut self.gamma,
                grad: &mut self.grad_gamma,
            },
            ParamGrad {
                param: &mut self.beta,
                grad: &mut self.grad_beta,
            },
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_gamma.scale(0.0);
        self.grad_beta.scale(0.0);
    }

    fn output_len(&self) -> usize {
        self.c * self.hw
    }

    fn label(&self) -> String {
        "bn".to_owned()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_forward_normalises_batch() {
        let mut bn = BatchNorm2d::new(1, 1, 2);
        let x = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let y = bn.forward(&x, true);
        // Normalised values should have ~zero mean and ~unit variance.
        let mean = y.mean();
        assert!(mean.abs() < 1e-5, "mean {mean}");
        let var = y.data().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1, 1, 1);
        // Train a few batches so the running stats move toward mean 10.
        for _ in 0..200 {
            let x = Tensor::from_vec(vec![4, 1], vec![9., 10., 10., 11.]);
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&Tensor::from_vec(vec![1, 1], vec![10.0]), false);
        assert!(
            y.data()[0].abs() < 0.2,
            "normalised mean input ~ 0, got {}",
            y.data()[0]
        );
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut bn = BatchNorm2d::new(2, 1, 2);
        let x = Tensor::from_vec(vec![2, 4], vec![0.5, -1.0, 2.0, 0.3, 1.5, 0.2, -0.7, 0.9]);
        // Objective: weighted sum to make per-element gradients distinct.
        let w: Vec<f32> = (0..8).map(|i| 0.1 + 0.2 * i as f32).collect();
        let objective = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            let y = bn.forward(x, true);
            y.data().iter().zip(&w).map(|(a, b)| a * b).sum()
        };
        let _ = objective(&mut bn, &x);
        let gout = Tensor::from_vec(vec![2, 4], w.clone());
        let gx = bn.backward(&gout);
        let eps = 1e-3;
        for i in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = objective(&mut bn, &xp);
            let fm = objective(&mut bn, &xm);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (gx.data()[i] - fd).abs() < 2e-2,
                "grad {i}: analytic {} vs fd {fd}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn gamma_beta_gradients_accumulate() {
        let mut bn = BatchNorm2d::new(1, 1, 2);
        let x = Tensor::from_vec(vec![1, 2], vec![1., -1.]);
        let g = Tensor::ones(vec![1, 2]);
        let _ = bn.forward(&x, true);
        let _ = bn.backward(&g);
        // d beta = sum(dy) = 2.
        assert!((bn.grad_beta.data()[0] - 2.0).abs() < 1e-6);
        bn.zero_grad();
        assert_eq!(bn.grad_beta.data()[0], 0.0);
    }
}
