//! Fully-connected (`fc`) layer.

use crate::layer::{Layer, ParamGrad};
use naps_tensor::{xavier_uniform, Tensor};
use rand::Rng;

/// A fully-connected layer `y = x @ W + b` with `W: [in, out]`.
///
/// This is the `fc(·)` of the paper's Table I; the layer whose ReLU output
/// the monitor watches is always a `Dense` followed by [`crate::Relu`].
#[derive(Debug, Clone)]
pub struct Dense {
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_x: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// A dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Dense {
            w: xavier_uniform(
                vec![in_features, out_features],
                in_features,
                out_features,
                rng,
            ),
            b: Tensor::zeros(vec![out_features]),
            grad_w: Tensor::zeros(vec![in_features, out_features]),
            grad_b: Tensor::zeros(vec![out_features]),
            cached_x: None,
            in_features,
            out_features,
        }
    }

    /// A dense layer with explicitly provided weights and bias (tests,
    /// deserialization).
    ///
    /// # Panics
    ///
    /// Panics if `w` is not `[in, out]` or `b` is not `[out]`.
    pub fn from_parts(w: Tensor, b: Tensor) -> Self {
        assert_eq!(w.shape().len(), 2, "weights must be 2-D");
        let (in_features, out_features) = (w.shape()[0], w.shape()[1]);
        assert_eq!(b.shape(), &[out_features], "bias must be [out]");
        Dense {
            grad_w: Tensor::zeros(vec![in_features, out_features]),
            grad_b: Tensor::zeros(vec![out_features]),
            cached_x: None,
            in_features,
            out_features,
            w,
            b,
        }
    }

    /// The weight matrix `[in, out]`.
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.b
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            x.shape()[1],
            self.in_features,
            "dense expected {} input features, got {:?}",
            self.in_features,
            x.shape()
        );
        self.cached_x = Some(x.clone());
        let mut y = x.matmul(&self.w);
        // Broadcast-add bias per row.
        let out = self.out_features;
        let b = self.b.data();
        for r in 0..y.shape()[0] {
            let row = &mut y.data_mut()[r * out..(r + 1) * out];
            for (v, &bv) in row.iter_mut().zip(b) {
                *v += bv;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_x
            .as_ref()
            // naps-lint: allow(typed_errors, "Layer::backward contract: forward caches first; misuse is a caller bug, not a runtime error path")
            .expect("backward called before forward");
        // dW += x^T @ g ; db += column sums of g ; dx = g @ W^T.
        let gw = x.matmul_at(grad_out);
        self.grad_w.add_assign(&gw);
        let gb = grad_out.sum_rows();
        self.grad_b.add_assign(&gb);
        grad_out.matmul_bt(&self.w)
    }

    fn params_mut(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                param: &mut self.w,
                grad: &mut self.grad_w,
            },
            ParamGrad {
                param: &mut self.b,
                grad: &mut self.grad_b,
            },
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_w.scale(0.0);
        self.grad_b.scale(0.0);
    }

    fn output_len(&self) -> usize {
        self.out_features
    }

    fn label(&self) -> String {
        format!("fc({})", self.out_features)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_applies_affine_map() {
        let w = Tensor::from_vec(vec![2, 3], vec![1., 0., 2., 0., 1., 3.]);
        let b = Tensor::from_vec(vec![3], vec![0.5, -0.5, 0.0]);
        let mut d = Dense::from_parts(w, b);
        let x = Tensor::from_vec(vec![1, 2], vec![2., 3.]);
        let y = d.forward(&x, true);
        assert_eq!(y.data(), &[2.5, 2.5, 13.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![2, 3], vec![0.4, -0.2, 0.9, -0.6, 0.1, 0.3]);
        // Scalar objective: sum of outputs.
        let y = d.forward(&x, true);
        let ones = Tensor::ones(vec![2, 2]);
        let gx = d.backward(&ones);

        // Finite differences on inputs.
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = d.forward(&xp, true).sum();
            let ym = d.forward(&xm, true).sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (gx.data()[i] - fd).abs() < 1e-2,
                "input grad {i}: analytic {} vs fd {fd}",
                gx.data()[i]
            );
        }
        let _ = y;
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1, 2], vec![0.7, -0.3]);
        let _ = d.forward(&x, true);
        let ones = Tensor::ones(vec![1, 2]);
        let _ = d.backward(&ones);
        let analytic = d.grad_w.clone();

        let eps = 1e-3;
        for i in 0..d.w.len() {
            let orig = d.w.data()[i];
            d.w.data_mut()[i] = orig + eps;
            let yp = d.forward(&x, true).sum();
            d.w.data_mut()[i] = orig - eps;
            let ym = d.forward(&x, true).sum();
            d.w.data_mut()[i] = orig;
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (analytic.data()[i] - fd).abs() < 1e-2,
                "weight grad {i}: analytic {} vs fd {fd}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(vec![1, 2]);
        let g = Tensor::ones(vec![1, 2]);
        let _ = d.forward(&x, true);
        let _ = d.backward(&g);
        let once = d.grad_w.clone();
        let _ = d.forward(&x, true);
        let _ = d.backward(&g);
        for (a, b) in d.grad_w.data().iter().zip(once.data()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        d.zero_grad();
        assert_eq!(d.grad_w.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_width_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(3, 2, &mut rng);
        let _ = d.forward(&Tensor::zeros(vec![1, 4]), true);
    }

    #[test]
    fn label_matches_paper_notation() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Dense::new(84, 43, &mut rng);
        assert_eq!(d.label(), "fc(43)");
    }
}
