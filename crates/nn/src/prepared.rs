//! The prepared, allocation-free snapshot inference path.
//!
//! [`ModelSnapshot::forward_observe_plan`] allocates a fresh output tensor
//! per layer per call.  [`ModelSnapshot::prepare`] resolves everything
//! that is frozen at capture time exactly once — layer kinds, `Dense`
//! weight panels packed via [`PackedWeights`], the observation plan — and
//! [`PreparedModel::forward_observe_into`] then runs the identical
//! arithmetic writing into a caller-owned [`ForwardScratch`] (ping-pong
//! carry buffers + logits) and a caller-owned observed-activation vector.
//! After the first call has sized those buffers to the batch shape, the
//! pass performs zero heap allocation, and every output is bit-identical
//! to the snapshot path (the `*_into` kernels share the blocked GEMM's
//! accumulation order, and Dropout/Flatten are exact identities).

use crate::observe::ObservationPlan;
use crate::serialize::{LayerSnapshot, ModelSnapshot};
use naps_tensor::{PackedWeights, Tensor};

/// One layer of a [`PreparedModel`]: weight- and kind-dispatch resolved at
/// preparation time.
#[derive(Debug, Clone)]
enum PreparedOp {
    /// Fully-connected layer with its weight panel packed once.
    Dense {
        /// The `[in, out]` panel, packed for `x @ w` products.
        packed: PackedWeights,
        /// Bias vector `[out]`.
        bias: Tensor,
    },
    /// ReLU activation.
    Relu,
    /// Leaky ReLU with its slope.
    LeakyRelu {
        /// Negative-side slope.
        slope: f32,
    },
    /// Dropout (inert at inference) and Flatten (data already flat):
    /// exact identities, skipped entirely unless observed.
    Identity,
}

/// Reusable per-worker workspace for [`PreparedModel::forward_observe_into`]:
/// two ping-pong activation buffers and the logits, all resized in place.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    /// The current unobserved activation.
    carry: Tensor,
    /// The buffer the next layer writes into before the ping-pong swap.
    spare: Tensor,
    /// The final layer's output.
    logits: Tensor,
}

impl ForwardScratch {
    /// An empty scratch; buffers grow to their high-water shapes on first
    /// use and are then reused allocation-free.
    pub fn new() -> Self {
        Self::default()
    }

    /// The logits written by the last
    /// [`PreparedModel::forward_observe_into`] call.
    pub fn logits(&self) -> &Tensor {
        &self.logits
    }
}

/// A [`ModelSnapshot`] with its frozen parts resolved for serving: packed
/// weight panels and a fixed observation plan.
#[derive(Debug, Clone)]
pub struct PreparedModel {
    ops: Vec<PreparedOp>,
    plan: ObservationPlan,
}

impl ModelSnapshot {
    /// Resolves the frozen half of the forward pass once: packs every
    /// `Dense` weight panel and fixes the observation plan, so that
    /// [`PreparedModel::forward_observe_into`] never allocates after
    /// warm-up.  The serving publish/load path calls this exactly where it
    /// compiles frozen zones.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a layer `>= self.layers.len()`.
    // naps-lint: allow-fn(hot_path_alloc, "preparation is the cold publish/load half: it allocates once so the per-request half never does")
    pub fn prepare(&self, plan: &ObservationPlan) -> PreparedModel {
        if let Some(deepest) = plan.max_layer() {
            assert!(
                deepest < self.layers.len(),
                "plan observes layer {deepest} of a {}-layer snapshot",
                self.layers.len()
            );
        }
        let ops = self
            .layers
            .iter()
            .map(|l| match l {
                LayerSnapshot::Dense { w, b } => PreparedOp::Dense {
                    packed: PackedWeights::pack(w),
                    bias: b.clone(),
                },
                LayerSnapshot::Relu => PreparedOp::Relu,
                LayerSnapshot::LeakyRelu { slope } => PreparedOp::LeakyRelu { slope: *slope },
                LayerSnapshot::Dropout { .. } | LayerSnapshot::Flatten { .. } => {
                    PreparedOp::Identity
                }
            })
            .collect();
        PreparedModel {
            ops,
            plan: plan.clone(),
        }
    }
}

impl PreparedModel {
    /// The observation plan this model was prepared for.
    pub fn plan(&self) -> &ObservationPlan {
        &self.plan
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for the empty model (logits are then the input).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The allocation-free counterpart of
    /// [`ModelSnapshot::forward_observe_plan`]: after the call,
    /// `observed[i]` is the output of plan layer `i` and
    /// [`ForwardScratch::logits`] holds the logits — all bit-identical to
    /// the snapshot path, all written into reused storage.
    ///
    /// `observed` is caller-owned reusable storage (e.g. the `observed`
    /// field of a serving `ObservedBatch`); it is resized to the plan
    /// length on first use and reused in place afterwards.
    pub fn forward_observe_into(
        &self,
        x: &Tensor,
        scratch: &mut ForwardScratch,
        observed: &mut Vec<Tensor>,
    ) {
        // Warm-up only: size the observed storage to the plan.
        if observed.len() != self.plan.len() {
            observed.resize(self.plan.len(), Tensor::default());
        }
        /// Where the current activation lives: borrowed input, the carry
        /// buffer, or an already-filled observed slot.
        enum Src {
            Input,
            Carry,
            Observed(usize),
        }
        let mut src = Src::Input;
        for (i, op) in self.ops.iter().enumerate() {
            match self.plan.position(i) {
                Some(slot) => {
                    match src {
                        // Plan slots fill in ascending order, so a filled
                        // source slot sits strictly left of `slot` and the
                        // split borrows are disjoint.
                        Src::Observed(j) => {
                            let (done, rest) = observed.split_at_mut(slot);
                            apply(op, &done[j], &mut rest[0]);
                        }
                        Src::Input => apply(op, x, &mut observed[slot]),
                        Src::Carry => apply(op, &scratch.carry, &mut observed[slot]),
                    }
                    src = Src::Observed(slot);
                }
                None => {
                    // Unobserved identities are exact no-ops: let the
                    // current activation keep flowing.
                    if matches!(op, PreparedOp::Identity) {
                        continue;
                    }
                    match src {
                        Src::Input => apply(op, x, &mut scratch.spare),
                        Src::Carry => {
                            let ForwardScratch { carry, spare, .. } = scratch;
                            apply(op, carry, spare);
                        }
                        Src::Observed(j) => apply(op, &observed[j], &mut scratch.spare),
                    }
                    std::mem::swap(&mut scratch.carry, &mut scratch.spare);
                    src = Src::Carry;
                }
            }
        }
        match src {
            Src::Input => scratch.logits.copy_from(x),
            Src::Carry => {
                let ForwardScratch { carry, logits, .. } = scratch;
                logits.copy_from(carry);
            }
            Src::Observed(j) => scratch.logits.copy_from(&observed[j]),
        }
    }
}

/// Inference-mode forward of one prepared layer into `out`, matching the
/// snapshot path's `snapshot_layer_forward` arithmetic exactly (same GEMM
/// kernel, same bias pass, same activation closures).
fn apply(op: &PreparedOp, x: &Tensor, out: &mut Tensor) {
    match op {
        PreparedOp::Dense { packed, bias } => {
            packed.matmul_into(x, out);
            let width = packed.out_features();
            let b = bias.data();
            let rows = out.shape()[0];
            let data = out.data_mut();
            for r in 0..rows {
                let row = &mut data[r * width..(r + 1) * width];
                for (v, &bv) in row.iter_mut().zip(b) {
                    *v += bv;
                }
            }
        }
        PreparedOp::Relu => map_into(x, out, |v| v.max(0.0)),
        PreparedOp::LeakyRelu { slope } => {
            let s = *slope;
            map_into(x, out, move |v| if v > 0.0 { v } else { s * v });
        }
        PreparedOp::Identity => out.copy_from(x),
    }
}

/// Elementwise map written into `out` (resized in place).
fn map_into(x: &Tensor, out: &mut Tensor, f: impl Fn(f32) -> f32) {
    out.resize_in_place(x.shape());
    for (o, &v) in out.data_mut().iter_mut().zip(x.data()) {
        *o = f(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use crate::sequential::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snap() -> ModelSnapshot {
        let mut rng = StdRng::seed_from_u64(11);
        ModelSnapshot::capture(&mlp(&[3, 7, 5, 2], &mut rng)).expect("MLP captures")
    }

    #[track_caller]
    fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str) {
        assert_eq!(got.shape(), want.shape(), "{what}: shape");
        let same = got
            .data()
            .iter()
            .zip(want.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "{what}: diverged from the snapshot path");
    }

    #[test]
    fn prepared_matches_snapshot_bit_for_bit() {
        let snap = snap();
        let x = Tensor::from_vec(vec![2, 3], vec![0.3, -1.2, 0.5, 2.0, 0.1, -0.4]);
        for layers in [vec![], vec![1], vec![3], vec![1, 3], vec![0, 2, 4], vec![4]] {
            let plan = ObservationPlan::new(layers.clone());
            let (want_obs, want_logits) = snap.forward_observe_plan(&x, &plan);
            let prepared = snap.prepare(&plan);
            let mut scratch = ForwardScratch::new();
            let mut observed = Vec::new();
            prepared.forward_observe_into(&x, &mut scratch, &mut observed);
            assert_eq!(observed.len(), want_obs.len(), "{layers:?}");
            for (got, want) in observed.iter().zip(&want_obs) {
                assert_bits_eq(got, want, "observed");
            }
            assert_bits_eq(scratch.logits(), &want_logits, "logits");
        }
    }

    #[test]
    fn prepared_covers_every_layer_variant() {
        use crate::dense::Dense;
        use crate::dropout::Dropout;
        use crate::layer::{Flatten, Layer};
        use crate::leaky::LeakyRelu;
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Flatten::new(2)),
            Box::new(Dense::from_parts(
                Tensor::from_vec(vec![2, 3], vec![1., -1., 0.5, 0.25, 2., -0.75]),
                Tensor::from_vec(vec![3], vec![0.1, -0.2, 0.3]),
            )),
            Box::new(LeakyRelu::new(0.1)),
            Box::new(Dropout::new(0.4, 3)),
            Box::new(Dense::from_parts(
                Tensor::from_vec(vec![3, 2], vec![1., 0., -1., 2., 0.5, 0.5]),
                Tensor::zeros(vec![2]),
            )),
        ];
        let net = Sequential::new(layers);
        let snap = ModelSnapshot::capture(&net).expect("captures");
        let x = Tensor::from_vec(vec![2, 2], vec![0.6, -1.4, 2.2, 0.0]);
        let plan = ObservationPlan::new(vec![0, 1, 2, 3, 4]);
        let (want_obs, want_logits) = snap.forward_observe_plan(&x, &plan);
        let prepared = snap.prepare(&plan);
        let mut scratch = ForwardScratch::new();
        let mut observed = Vec::new();
        prepared.forward_observe_into(&x, &mut scratch, &mut observed);
        for (got, want) in observed.iter().zip(&want_obs) {
            assert_bits_eq(got, want, "observed");
        }
        assert_bits_eq(scratch.logits(), &want_logits, "logits");
    }

    #[test]
    fn scratch_survives_changing_batch_sizes() {
        let snap = snap();
        let plan = ObservationPlan::new(vec![1, 3]);
        let prepared = snap.prepare(&plan);
        let mut scratch = ForwardScratch::new();
        let mut observed = Vec::new();
        for batch in [4usize, 1, 3, 2] {
            let x = Tensor::from_vec(
                vec![batch, 3],
                (0..batch * 3).map(|i| (i as f32 * 0.31).sin()).collect(),
            );
            let (want_obs, want_logits) = snap.forward_observe_plan(&x, &plan);
            prepared.forward_observe_into(&x, &mut scratch, &mut observed);
            for (got, want) in observed.iter().zip(&want_obs) {
                assert_bits_eq(got, want, "observed");
            }
            assert_bits_eq(scratch.logits(), &want_logits, "logits");
        }
    }

    #[test]
    fn empty_model_returns_input_as_logits() {
        let snap = ModelSnapshot { layers: Vec::new() };
        let prepared = snap.prepare(&ObservationPlan::new(vec![]));
        assert!(prepared.is_empty());
        let x = Tensor::ones(vec![1, 3]);
        let mut scratch = ForwardScratch::new();
        let mut observed = Vec::new();
        prepared.forward_observe_into(&x, &mut scratch, &mut observed);
        assert!(observed.is_empty());
        assert_eq!(scratch.logits(), &x);
    }

    #[test]
    #[should_panic(expected = "plan observes layer 9")]
    fn out_of_range_plan_panics() {
        let _ = snap().prepare(&ObservationPlan::single(9));
    }
}
