//! Sequential composition of layers, with activation taps and
//! boundary-gradient collection.

use crate::layer::{Layer, ParamGrad};
use naps_tensor::Tensor;

/// A feed-forward stack of layers, applied in order.
///
/// Besides plain [`forward`](Sequential::forward), the container exposes
/// two activation taps: [`forward_observe_plan`](Sequential::forward_observe_plan)
/// retains exactly the layers an [`crate::ObservationPlan`] names (the
/// runtime monitors' hot path — like a forward hook in the paper's
/// PyTorch implementation, without materialising unobserved layers),
/// and [`forward_all`](Sequential::forward_all) returns **every**
/// intermediate activation for diagnostics and training-time tooling.
#[derive(Debug)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Whole-network forward passes executed (batched or not), see
    /// [`Sequential::forward_passes`].
    passes: u64,
}

impl Sequential {
    /// Composes `layers` front to back.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers, passes: 0 }
    }

    /// Number of whole-network forward passes this model has executed
    /// ([`forward`](Sequential::forward),
    /// [`forward_all`](Sequential::forward_all) and
    /// [`forward_observe_plan`](Sequential::forward_observe_plan) each
    /// count one per call, regardless of batch size or how many layers
    /// were observed).  Lets monitoring harnesses *measure* — not assume
    /// — that adding monitored layers adds no forward passes.
    pub fn forward_passes(&self) -> u64 {
        self.passes
    }

    /// Resets the [`Sequential::forward_passes`] counter.
    pub fn reset_forward_passes(&mut self) {
        self.passes = 0;
    }

    pub(crate) fn count_pass(&mut self) {
        self.passes += 1;
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to a layer.
    pub fn layer(&self, idx: usize) -> &dyn Layer {
        self.layers[idx].as_ref()
    }

    /// Mutable access to a layer (e.g. to read `Dense::weights` for the
    /// saliency special case).
    pub fn layer_mut(&mut self, idx: usize) -> &mut dyn Layer {
        self.layers[idx].as_mut()
    }

    /// Runs the network on a batch `[batch, features]`, returning logits.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.passes += 1;
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    /// Runs the network and returns every activation: entry `0` is the
    /// input, entry `i + 1` is the output of layer `i` (so the last entry
    /// is the logits).
    pub fn forward_all(&mut self, x: &Tensor, train: bool) -> Vec<Tensor> {
        self.passes += 1;
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &mut self.layers {
            // naps-lint: allow(typed_errors, "acts starts with the input pushed two lines up and only grows; never empty")
            let next = layer.forward(acts.last().expect("nonempty"), train);
            acts.push(next);
        }
        acts
    }

    /// Backpropagates `grad_out` (w.r.t. the logits) through the stack,
    /// accumulating parameter gradients, and returns the gradient w.r.t.
    /// the network input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Like [`backward`](Sequential::backward) but returns the gradient at
    /// **every** layer boundary: entry `i` is the gradient w.r.t. the input
    /// of layer `i` (equivalently the output of layer `i - 1`), and the
    /// final entry is `grad_out` itself.
    ///
    /// Gradient saliency for a monitored layer `l` reads entry `l + 1`.
    pub fn backward_all(&mut self, grad_out: &Tensor) -> Vec<Tensor> {
        let mut grads = vec![Tensor::default(); self.layers.len() + 1];
        grads[self.layers.len()] = grad_out.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            grads[i] = layer.backward(&grads[i + 1]);
        }
        grads
    }

    /// All `(parameter, gradient)` pairs of the stack, in layer order.
    pub fn params_mut(&mut self) -> Vec<ParamGrad<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.param.len()).sum()
    }

    /// Architecture summary in the paper's Table I notation, e.g.
    /// `"conv(40), maxpool, fc(320), relu, fc(10)"`.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.label())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Predicted class per sample: argmax over logits.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        let logits = self.forward(x, false);
        let classes = logits.shape()[1];
        (0..logits.shape()[0])
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                let _ = classes;
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::relu::Relu;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(3, 5, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(5, 2, &mut rng)),
        ])
    }

    #[test]
    fn forward_all_exposes_intermediates() {
        let mut net = tiny_net(0);
        let x = Tensor::ones(vec![2, 3]);
        let acts = net.forward_all(&x, false);
        assert_eq!(acts.len(), 4);
        assert_eq!(acts[0].shape(), &[2, 3]);
        assert_eq!(acts[2].shape(), &[2, 5]); // output of the ReLU tap
        assert_eq!(acts[3].shape(), &[2, 2]);
        // forward and forward_all agree on the logits.
        let direct = net.forward(&x, false);
        assert_eq!(acts[3], direct);
    }

    #[test]
    fn backward_all_boundary_shapes() {
        let mut net = tiny_net(1);
        let x = Tensor::ones(vec![1, 3]);
        let _ = net.forward(&x, true);
        let g = Tensor::ones(vec![1, 2]);
        let grads = net.backward_all(&g);
        assert_eq!(grads.len(), 4);
        assert_eq!(grads[0].shape(), &[1, 3]);
        assert_eq!(grads[2].shape(), &[1, 5]);
        assert_eq!(grads[3], g);
    }

    #[test]
    fn backward_all_agrees_with_backward() {
        let mut a = tiny_net(2);
        let mut b = tiny_net(2);
        let x = Tensor::from_vec(vec![1, 3], vec![0.1, -0.4, 0.9]);
        let g = Tensor::from_vec(vec![1, 2], vec![1.0, -2.0]);
        let _ = a.forward(&x, true);
        let ga = a.backward(&g);
        let _ = b.forward(&x, true);
        let gb = b.backward_all(&g);
        assert_eq!(ga, gb[0]);
    }

    #[test]
    fn num_parameters_counts_all() {
        let mut net = tiny_net(3);
        // (3*5 + 5) + (5*2 + 2) = 32
        assert_eq!(net.num_parameters(), 32);
    }

    #[test]
    fn summary_lists_layers() {
        let net = tiny_net(4);
        assert_eq!(net.summary(), "fc(5), relu, fc(2)");
    }

    #[test]
    fn forward_pass_counter_counts_whole_passes() {
        let mut net = tiny_net(5);
        assert_eq!(net.forward_passes(), 0);
        let x = Tensor::ones(vec![2, 3]);
        let _ = net.forward(&x, false);
        let _ = net.forward_all(&x, false);
        let _ = net.forward_observe_plan(&x, &crate::observe::ObservationPlan::single(1), false);
        assert_eq!(net.forward_passes(), 3, "one count per whole pass");
        net.reset_forward_passes();
        assert_eq!(net.forward_passes(), 0);
    }

    #[test]
    fn predict_takes_argmax() {
        let w = Tensor::from_vec(vec![1, 2], vec![1.0, -1.0]);
        let b = Tensor::from_vec(vec![2], vec![0.0, 0.0]);
        let mut net = Sequential::new(vec![Box::new(Dense::from_parts(w, b))]);
        let preds = net.predict(&Tensor::from_vec(vec![2, 1], vec![2.0, -3.0]));
        assert_eq!(preds, vec![0, 1]);
    }
}
