//! Inverted dropout for regularising the paper's deep fc stacks.

use crate::layer::Layer;
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; at inference the
/// layer is the identity, so monitored activation patterns are unaffected
/// by it in deployment.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
    out_len: usize,
}

impl Dropout {
    /// Dropout with drop probability `p`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0,1), got {p}"
        );
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
            out_len: 0,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.out_len = x.shape().iter().skip(1).product();
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.gen::<f32>() < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, &m) in y.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                assert_eq!(
                    mask.len(),
                    grad_out.len(),
                    "gradient shape changed between forward and backward"
                );
                let mut g = grad_out.clone();
                for (v, &m) in g.data_mut().iter_mut().zip(mask) {
                    *v *= m;
                }
                g
            }
        }
    }

    fn output_len(&self) -> usize {
        self.out_len
    }

    fn label(&self) -> String {
        format!("dropout({})", self.p)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::from_vec(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x, false), x);
        // Backward after inference forward passes gradients through.
        let g = Tensor::ones(vec![1, 4]);
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(vec![1, 1000]);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((300..700).contains(&zeros), "{zeros} zeros");
        // Survivors are scaled to keep the expectation.
        for &v in y.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_reuses_forward_mask() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(vec![1, 100]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(vec![1, 100]));
        for (gy, yy) in g.data().iter().zip(y.data()) {
            assert_eq!(*gy == 0.0, *yy == 0.0, "mask mismatch");
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 3);
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, -2.0, 3.0]);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0, 0);
    }
}
