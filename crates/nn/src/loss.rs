//! Softmax, cross-entropy loss, and accuracy.

use naps_tensor::Tensor;

/// Row-wise softmax of a `[batch, classes]` logits tensor.
///
/// Numerically stabilised by subtracting each row's maximum.
pub fn softmax(logits: &Tensor) -> Tensor {
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    let mut out = logits.clone();
    for r in 0..batch {
        let row = &mut out.data_mut()[r * classes..(r + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean softmax cross-entropy over a batch, plus the gradient w.r.t. the
/// logits (already divided by the batch size, ready for
/// [`crate::Sequential::backward`]).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), batch, "one label per batch row required");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let p = probs.at2(r, label).max(1e-12);
        loss -= p.ln();
        let g = grad.at2(r, label);
        grad.set2(r, label, g - 1.0);
    }
    grad.scale(1.0 / batch as f32);
    (loss / batch as f32, grad)
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), batch, "one label per batch row required");
    if batch == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let mut best = 0;
        for c in 1..classes {
            if row[c] > row[best] {
                best = c;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f64 / batch as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Larger logit -> larger probability.
        assert!(p.at2(0, 2) > p.at2(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1, 3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(vec![1, 3], vec![101., 102., 103.]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let logits = Tensor::from_vec(vec![1, 3], vec![10., 0., 0.]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 0.01, "loss {loss}");
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(bad_loss > 5.0, "loss {bad_loss}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.5, -0.1, 0.2, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - fd).abs() < 1e-3,
                "grad {i}: analytic {} vs fd {fd}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1, 4], vec![0.3, -0.2, 0.8, 0.1]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let s: f32 = grad.data().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![3, 2], vec![2., 1., 0., 5., 1., 1.]);
        // Row 2 ties -> argmax 0.
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor::zeros(vec![1, 2]);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }
}
