//! Model serialization for deployment: capture a trained [`Sequential`]
//! into a self-contained, serde-friendly snapshot and restore it later —
//! the companion of [`naps_core`-style] monitor snapshots, so a monitored
//! network ships as two JSON files.
//!
//! Convolutional models are supported through their full parameter set;
//! stateful training caches are not captured (snapshots restore in
//! inference-ready state).

use crate::dense::Dense;
use crate::dropout::Dropout;
use crate::layer::{Flatten, Layer};
use crate::leaky::LeakyRelu;
use crate::relu::Relu;
use crate::sequential::Sequential;
use naps_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A layer's serialisable description.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayerSnapshot {
    /// Fully-connected layer: weights `[in, out]` and bias `[out]`.
    Dense {
        /// Weight matrix.
        w: Tensor,
        /// Bias vector.
        b: Tensor,
    },
    /// ReLU activation.
    Relu,
    /// Leaky ReLU with its slope.
    LeakyRelu {
        /// Negative-side slope.
        slope: f32,
    },
    /// Dropout (restored with a fresh deterministic RNG).
    Dropout {
        /// Drop probability.
        p: f32,
    },
    /// Flatten marker with its feature count.
    Flatten {
        /// Features per sample.
        features: usize,
    },
}

/// A serialisable description of an MLP-style [`Sequential`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Layer descriptions in order.
    pub layers: Vec<LayerSnapshot>,
}

/// Error restoring or capturing a model snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The model contains a layer type the snapshot format cannot express
    /// (e.g. convolution, pooling, batch norm).
    UnsupportedLayer {
        /// The layer's label.
        label: String,
        /// Its position.
        index: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedLayer { label, index } => {
                write!(f, "layer {index} ({label}) cannot be snapshotted")
            }
        }
    }
}

impl Error for SnapshotError {}

impl ModelSnapshot {
    /// Captures an MLP-style model (Dense / ReLU / LeakyReLU / Dropout /
    /// Flatten layers).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::UnsupportedLayer`] for convolutional or
    /// normalisation layers; snapshot those models with custom tooling.
    pub fn capture(model: &Sequential) -> Result<Self, SnapshotError> {
        let mut layers = Vec::with_capacity(model.len());
        for i in 0..model.len() {
            let layer = model.layer(i);
            let any = layer.as_any();
            let snap = if let Some(d) = any.downcast_ref::<Dense>() {
                LayerSnapshot::Dense {
                    w: d.weights().clone(),
                    b: d.bias().clone(),
                }
            } else if any.downcast_ref::<Relu>().is_some() {
                LayerSnapshot::Relu
            } else if let Some(l) = any.downcast_ref::<LeakyRelu>() {
                LayerSnapshot::LeakyRelu { slope: l.slope() }
            } else if let Some(d) = any.downcast_ref::<Dropout>() {
                LayerSnapshot::Dropout { p: d.probability() }
            } else if let Some(f) = any.downcast_ref::<Flatten>() {
                LayerSnapshot::Flatten {
                    features: f.output_len(),
                }
            } else {
                // Conv2d, MaxPool2d, BatchNorm2d and any future stateful
                // layer fall through here.
                return Err(SnapshotError::UnsupportedLayer {
                    label: layer.label(),
                    index: i,
                });
            };
            layers.push(snap);
        }
        Ok(ModelSnapshot { layers })
    }

    /// Rebuilds the model.  Dropout layers get a fixed seed (they are
    /// inert at inference anyway).
    pub fn restore(&self) -> Sequential {
        let layers: Vec<Box<dyn Layer>> = self
            .layers
            .iter()
            .map(|l| -> Box<dyn Layer> {
                match l {
                    LayerSnapshot::Dense { w, b } => {
                        Box::new(Dense::from_parts(w.clone(), b.clone()))
                    }
                    LayerSnapshot::Relu => Box::new(Relu::new()),
                    LayerSnapshot::LeakyRelu { slope } => Box::new(LeakyRelu::new(*slope)),
                    LayerSnapshot::Dropout { p } => Box::new(Dropout::new(*p, 0)),
                    LayerSnapshot::Flatten { features } => Box::new(Flatten::new(*features)),
                }
            })
            .collect();
        Sequential::new(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_snapshot_roundtrips_inference() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = crate::models::mlp(&[4, 8, 3], &mut rng);
        let snap = ModelSnapshot::capture(&net).expect("capture");
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: ModelSnapshot = serde_json::from_str(&json).expect("deserialize");
        let mut restored = back.restore();
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|i| i as f32 * 0.3 - 1.0).collect());
        assert_eq!(net.forward(&x, false), restored.forward(&x, false));
    }

    #[test]
    fn snapshot_preserves_layer_variants() {
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Dense::from_parts(
                Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.]),
                Tensor::zeros(vec![2]),
            )),
            Box::new(LeakyRelu::new(0.1)),
            Box::new(Dropout::new(0.3, 7)),
            Box::new(Flatten::new(2)),
            Box::new(Relu::new()),
        ];
        let mut net = Sequential::new(layers);
        let x = Tensor::from_vec(vec![1, 2], vec![0.5, -0.5]);
        let _ = net.forward(&x, false);
        let snap = ModelSnapshot::capture(&net).expect("capture");
        assert_eq!(snap.layers.len(), 5);
        let mut restored = snap.restore();
        assert_eq!(restored.summary(), net.summary());
        assert_eq!(restored.forward(&x, false), net.forward(&x, false));
    }

    #[test]
    fn conv_models_are_rejected_with_context() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = crate::models::mnist_net(&mut rng);
        let err = ModelSnapshot::capture(&net).expect_err("conv unsupported");
        let SnapshotError::UnsupportedLayer { label, index } = err;
        assert_eq!(index, 0);
        assert!(label.contains("conv"));
    }
}
