//! Observation plans: which layers' activations a forward pass must keep.
//!
//! The monitor family reads the output of one or more ReLU layers per
//! query.  The original tap,
//! [`forward_all`](crate::Sequential::forward_all), materialises **every**
//! intermediate activation of the batch — fine for diagnostics, wasteful
//! on a serving hot path where only the monitored layers matter.  An
//! [`ObservationPlan`] names the layers to keep, and
//! [`Sequential::forward_observe_plan`](crate::Sequential::forward_observe_plan)
//! /
//! [`ModelSnapshot::forward_observe_plan`](crate::ModelSnapshot::forward_observe_plan)
//! run one packed forward pass that retains **only** those layers'
//! outputs (plus the logits): no unobserved layer's activation is ever
//! retained, so the live set is the planned layers plus the one tensor
//! currently flowing — not the whole depth of the network.

use crate::sequential::Sequential;
use crate::serialize::{LayerSnapshot, ModelSnapshot};
use naps_tensor::Tensor;

/// A sorted, deduplicated set of layer indices whose activations a
/// forward pass must retain.
///
/// Layer indices follow the [`Sequential`] convention: the plan entry `l`
/// keeps the **output** of layer `l` (what `forward_all(..)[l + 1]`
/// returns), which is the tensor a monitor built for layer `l` observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservationPlan {
    layers: Vec<usize>,
}

impl ObservationPlan {
    /// A plan observing `layers` (in any order, duplicates allowed —
    /// stored sorted and deduplicated).
    pub fn new(mut layers: Vec<usize>) -> Self {
        layers.sort_unstable();
        layers.dedup();
        ObservationPlan { layers }
    }

    /// The single-layer plan — the paper's default of one
    /// close-to-output layer.
    pub fn single(layer: usize) -> Self {
        ObservationPlan {
            layers: vec![layer],
        }
    }

    /// The observed layer indices, ascending.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Number of observed layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when nothing is observed (the forward pass then keeps only
    /// the logits).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Position of `layer` in the observed-output list returned by the
    /// `forward_observe_plan` methods, `None` when the layer is not in
    /// the plan.
    pub fn position(&self, layer: usize) -> Option<usize> {
        self.layers.binary_search(&layer).ok()
    }

    /// `true` when `layer`'s output is retained by this plan.
    pub fn observes(&self, layer: usize) -> bool {
        self.position(layer).is_some()
    }

    /// The deepest observed layer, `None` for an empty plan.
    pub fn max_layer(&self) -> Option<usize> {
        self.layers.last().copied()
    }
}

impl Sequential {
    /// Runs the network on a batch and keeps only the activations the
    /// plan asks for: returns `(observed, logits)`, where `observed[i]`
    /// is the output of `plan.layers()[i]`.
    ///
    /// Agrees with [`Sequential::forward_all`] entry-for-entry on the
    /// planned layers and the logits, while retaining no unobserved
    /// layer's activation: at any moment the live set is the planned
    /// outputs kept so far plus the one tensor currently flowing,
    /// instead of the network's whole depth.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a layer `>= self.len()`.
    pub fn forward_observe_plan(
        &mut self,
        x: &Tensor,
        plan: &ObservationPlan,
        train: bool,
    ) -> (Vec<Tensor>, Tensor) {
        if let Some(deepest) = plan.max_layer() {
            assert!(
                deepest < self.len(),
                "plan observes layer {deepest} of a {}-layer model",
                self.len()
            );
        }
        self.count_pass();
        if self.is_empty() {
            return (Vec::new(), x.clone());
        }
        let mut observed: Vec<Tensor> = Vec::with_capacity(plan.len());
        // The current activation lives either in `carry` (not observed:
        // dropped as soon as the next layer consumes it) or as the tail
        // of `observed` (kept for the caller).  Until the first layer has
        // produced an output, the input batch is only borrowed — no
        // upfront clone.
        let mut carry: Option<Tensor> = None;
        for i in 0..self.len() {
            let input = carry.as_ref().or_else(|| observed.last()).unwrap_or(x);
            let out = self.layer_mut(i).forward(input, train);
            if plan.observes(i) {
                carry = None;
                observed.push(out);
            } else {
                carry = Some(out);
            }
        }
        let logits = match carry {
            Some(t) => t,
            // The last layer itself is observed: the logits are the final
            // observed entry (one extra clone, only in that rare plan).
            // naps-lint: allow(typed_errors, "carry is None only when the final layer was observed, i.e. its output was pushed onto observed")
            None => observed.last().cloned().expect("observed last layer"),
        };
        (observed, logits)
    }
}

impl ModelSnapshot {
    /// The stateless counterpart of
    /// [`Sequential::forward_observe_plan`]: runs the snapshotted
    /// network on a batch through `&self` — no activation caches are
    /// written, so one snapshot can serve any number of threads without
    /// replication — and keeps only the planned layers' outputs plus the
    /// logits.
    ///
    /// Inference-time semantics are bit-identical to restoring the
    /// snapshot and calling the `Sequential` path with `train = false`
    /// (dropout is inert, so the layer is an identity here).
    ///
    /// # Panics
    ///
    /// Panics if the plan names a layer `>= self.layers.len()`.
    pub fn forward_observe_plan(
        &self,
        x: &Tensor,
        plan: &ObservationPlan,
    ) -> (Vec<Tensor>, Tensor) {
        if let Some(deepest) = plan.max_layer() {
            assert!(
                deepest < self.layers.len(),
                "plan observes layer {deepest} of a {}-layer snapshot",
                self.layers.len()
            );
        }
        if self.layers.is_empty() {
            return (Vec::new(), x.clone());
        }
        let mut observed: Vec<Tensor> = Vec::with_capacity(plan.len());
        // As in the live path: the input is borrowed until the first layer
        // produces an owned output — no upfront clone of the batch.
        let mut carry: Option<Tensor> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let input = carry.as_ref().or_else(|| observed.last()).unwrap_or(x);
            let out = snapshot_layer_forward(layer, input);
            if plan.observes(i) {
                carry = None;
                observed.push(out);
            } else {
                carry = Some(out);
            }
        }
        let logits = match carry {
            Some(t) => t,
            // naps-lint: allow(typed_errors, "carry is None only when the final layer was observed, i.e. its output was pushed onto observed")
            None => observed.last().cloned().expect("observed last layer"),
        };
        (observed, logits)
    }
}

/// Inference-mode forward of one snapshotted layer, matching the live
/// layer's `forward(.., train = false)` arithmetic exactly.
fn snapshot_layer_forward(layer: &LayerSnapshot, x: &Tensor) -> Tensor {
    match layer {
        LayerSnapshot::Dense { w, b } => {
            let mut y = x.matmul(w);
            let out = w.shape()[1];
            let bias = b.data();
            for r in 0..y.shape()[0] {
                let row = &mut y.data_mut()[r * out..(r + 1) * out];
                for (v, &bv) in row.iter_mut().zip(bias) {
                    *v += bv;
                }
            }
            y
        }
        LayerSnapshot::Relu => x.map(|v| v.max(0.0)),
        LayerSnapshot::LeakyRelu { slope } => {
            let slope = *slope;
            x.map(move |v| if v > 0.0 { v } else { slope * v })
        }
        // Dropout is inert at inference; Flatten never reshapes (data is
        // already flat `[batch, features]`).
        LayerSnapshot::Dropout { .. } | LayerSnapshot::Flatten { .. } => x.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(11);
        mlp(&[3, 7, 5, 2], &mut rng)
    }

    #[test]
    fn plan_sorts_and_dedups() {
        let plan = ObservationPlan::new(vec![3, 1, 3, 1]);
        assert_eq!(plan.layers(), &[1, 3]);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.position(3), Some(1));
        assert_eq!(plan.position(2), None);
        assert!(plan.observes(1) && !plan.observes(0));
        assert_eq!(plan.max_layer(), Some(3));
        assert!(ObservationPlan::new(Vec::new()).is_empty());
    }

    #[test]
    fn plan_agrees_with_forward_all() {
        let mut net = net();
        let x = Tensor::from_vec(vec![2, 3], vec![0.3, -1.2, 0.5, 2.0, 0.1, -0.4]);
        let all = net.forward_all(&x, false);
        for layers in [vec![], vec![1], vec![3], vec![1, 3], vec![0, 2, 4]] {
            let plan = ObservationPlan::new(layers.clone());
            let (observed, logits) = net.forward_observe_plan(&x, &plan, false);
            assert_eq!(observed.len(), plan.len());
            for (got, &l) in observed.iter().zip(plan.layers()) {
                assert_eq!(got, &all[l + 1], "layer {l}");
            }
            assert_eq!(&logits, all.last().expect("nonempty"), "{layers:?}");
        }
    }

    #[test]
    fn observing_the_last_layer_yields_the_logits_twice() {
        let mut net = net();
        let last = net.len() - 1;
        let x = Tensor::ones(vec![1, 3]);
        let (observed, logits) =
            net.forward_observe_plan(&x, &ObservationPlan::single(last), false);
        assert_eq!(observed.len(), 1);
        assert_eq!(observed[0], logits);
    }

    #[test]
    fn snapshot_plan_matches_live_model() {
        let mut net = net();
        let snap = ModelSnapshot::capture(&net).expect("MLP captures");
        let x = Tensor::from_vec(vec![2, 3], vec![1.0, -0.5, 0.25, -2.0, 0.75, 0.0]);
        for layers in [vec![1], vec![1, 3], vec![0, 4]] {
            let plan = ObservationPlan::new(layers);
            let (live_obs, live_logits) = net.forward_observe_plan(&x, &plan, false);
            let (snap_obs, snap_logits) = snap.forward_observe_plan(&x, &plan);
            assert_eq!(live_obs, snap_obs);
            assert_eq!(live_logits, snap_logits);
        }
    }

    #[test]
    fn snapshot_plan_covers_every_layer_variant() {
        use crate::dense::Dense;
        use crate::dropout::Dropout;
        use crate::layer::{Flatten, Layer};
        use crate::leaky::LeakyRelu;
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Flatten::new(2)),
            Box::new(Dense::from_parts(
                Tensor::from_vec(vec![2, 3], vec![1., -1., 0.5, 0.25, 2., -0.75]),
                Tensor::from_vec(vec![3], vec![0.1, -0.2, 0.3]),
            )),
            Box::new(LeakyRelu::new(0.1)),
            Box::new(Dropout::new(0.4, 3)),
            Box::new(Dense::from_parts(
                Tensor::from_vec(vec![3, 2], vec![1., 0., -1., 2., 0.5, 0.5]),
                Tensor::zeros(vec![2]),
            )),
        ];
        let mut net = Sequential::new(layers);
        let snap = ModelSnapshot::capture(&net).expect("captures");
        let x = Tensor::from_vec(vec![2, 2], vec![0.6, -1.4, 2.2, 0.0]);
        let plan = ObservationPlan::new(vec![0, 1, 2, 3, 4]);
        let (live_obs, live_logits) = net.forward_observe_plan(&x, &plan, false);
        let (snap_obs, snap_logits) = snap.forward_observe_plan(&x, &plan);
        assert_eq!(live_obs, snap_obs);
        assert_eq!(live_logits, snap_logits);
    }

    #[test]
    #[should_panic(expected = "plan observes layer 9")]
    fn out_of_range_plan_panics() {
        let mut net = net();
        let x = Tensor::ones(vec![1, 3]);
        let _ = net.forward_observe_plan(&x, &ObservationPlan::single(9), false);
    }

    #[test]
    fn empty_model_returns_input_as_logits() {
        let mut net = Sequential::new(Vec::new());
        let x = Tensor::ones(vec![1, 3]);
        let (obs, logits) = net.forward_observe_plan(&x, &ObservationPlan::new(vec![]), false);
        assert!(obs.is_empty());
        assert_eq!(logits, x);
    }
}
