//! The [`Layer`] trait and common helper types.

use naps_tensor::Tensor;

/// A mutable view of one parameter tensor together with its accumulated
/// gradient, handed to optimizers by [`Layer::params_mut`].
#[derive(Debug)]
pub struct ParamGrad<'a> {
    /// The trainable parameter.
    pub param: &'a mut Tensor,
    /// The gradient accumulated by the latest backward pass(es).
    pub grad: &'a mut Tensor,
}

/// A differentiable network layer operating on batches.
///
/// Batches are 2-D tensors `[batch, features]`; layers that are spatially
/// aware ([`crate::Conv2d`], [`crate::MaxPool2d`], [`crate::BatchNorm2d`])
/// know their own channel/height/width geometry and interpret the feature
/// axis accordingly.  `forward` caches whatever the matching `backward`
/// needs, so the call order must be forward-then-backward on the same batch.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Computes the layer output for a batch.
    ///
    /// `train` selects training-time behaviour (e.g. batch statistics in
    /// batch norm) versus inference behaviour (running statistics).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates the gradient `grad_out` (w.r.t. this layer's output) to a
    /// gradient w.r.t. this layer's input, accumulating parameter gradients
    /// along the way.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to all `(parameter, gradient)` pairs, in a stable
    /// order.  Parameter-free layers return an empty vector.
    fn params_mut(&mut self) -> Vec<ParamGrad<'_>> {
        Vec::new()
    }

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {}

    /// Number of output features per sample.
    fn output_len(&self) -> usize;

    /// Short human-readable layer label (e.g. `"fc(40)"`), used by model
    /// summaries mirroring the paper's Table I notation.
    fn label(&self) -> String;

    /// Upcast for concrete-layer access (e.g. reading [`crate::Dense`]
    /// weights for the saliency special case of Section II).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A named no-op marking the transition from convolutional to
/// fully-connected processing.
///
/// Data already flows through the network as flat `[batch, features]`
/// tensors, so `Flatten` performs no work; it exists so model summaries
/// match the conventional architecture description.
#[derive(Debug, Clone)]
pub struct Flatten {
    features: usize,
}

impl Flatten {
    /// A flatten marker expecting `features` inputs per sample.
    pub fn new(features: usize) -> Self {
        Flatten { features }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        x.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn output_len(&self) -> usize {
        self.features
    }

    fn label(&self) -> String {
        "flatten".to_owned()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_is_identity() {
        let mut f = Flatten::new(6);
        let x = Tensor::from_vec(vec![2, 6], (0..12).map(|i| i as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y, x);
        let g = f.backward(&y);
        assert_eq!(g, x);
        assert_eq!(f.output_len(), 6);
        assert!(f.params_mut().is_empty());
    }
}
