//! Simulated thread spawn/join.  Simulated threads are real OS
//! threads registered with the scheduler: they run only while holding
//! the baton, and their panics become run outcomes instead of stderr
//! noise.

use std::fmt;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use super::runtime::{
    abort_blocking, current, payload_msg, require_ctx, set_ctx, AbortSignal, Ctx, Exec, Op, OpKind,
    Pending, Wait, Wake,
};

/// Mirrors `std::thread::panicking` — teardown and drop paths need it
/// through the facade.
pub fn panicking() -> bool {
    std::thread::panicking()
}

/// Inside a run, a pure yield point: simulated time passes instantly
/// and the scheduler explores every "the sleeper woke here"
/// interleaving.  Outside a run, a real sleep.
pub fn sleep(dur: Duration) {
    match current() {
        Some(ctx) => {
            if let Wake::Abort = ctx
                .exec
                .park(ctx.tid, Pending::ready(Op::simple(OpKind::Sleep)))
            {
                abort_blocking();
            }
        }
        None => std::thread::sleep(dur),
    }
}

pub fn yield_now() {
    match current() {
        Some(ctx) => {
            if let Wake::Abort = ctx
                .exec
                .park(ctx.tid, Pending::ready(Op::simple(OpKind::Yield)))
            {
                abort_blocking();
            }
        }
        None => std::thread::yield_now(),
    }
}

type Slot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

fn store_slot<T>(slot: &Slot<T>, v: std::thread::Result<T>) {
    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
}

fn take_slot<T>(slot: &Slot<T>) -> std::thread::Result<T> {
    slot.lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .unwrap_or_else(|| Err(Box::new(AbortSignal)))
}

fn slot_filled<T>(slot: &Slot<T>) -> bool {
    slot.lock().unwrap_or_else(|e| e.into_inner()).is_some()
}

/// Simulated `thread::Builder` — only the `name` knob, which is all
/// the facade crates use.
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder::default()
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawns a simulated thread.  The spawn itself is a decision
    /// point; the child first runs when the scheduler grants its
    /// `Start`.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let ctx = require_ctx();
        if let Wake::Abort = ctx
            .exec
            .park(ctx.tid, Pending::ready(Op::simple(OpKind::Spawn)))
        {
            abort_blocking();
            // Unwinding teardown: no thread; joining the dead handle
            // reports a teardown error.
            return Ok(JoinHandle { inner: None });
        }
        let tid = ctx.exec.register_thread();
        let slot: Slot<T> = Arc::new(StdMutex::new(None));
        let child_exec = Arc::clone(&ctx.exec);
        let child_slot = Arc::clone(&slot);
        let mut b = std::thread::Builder::new();
        if let Some(n) = self.name {
            b = b.name(n);
        }
        let real = b.spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&child_exec),
                tid,
            }));
            let outcome: std::thread::Result<T> = match child_exec.wait_start(tid) {
                // Aborted before ever running: don't start the body.
                Wake::Abort => Err(Box::new(AbortSignal)),
                Wake::Granted { .. } => panic::catch_unwind(AssertUnwindSafe(f)),
            };
            let panic_info = match &outcome {
                Ok(_) => None,
                Err(p) => Some((p.is::<AbortSignal>(), payload_msg(p.as_ref()))),
            };
            // Slot before finish: a joiner enabled by `Finished` must
            // find the result already there.
            store_slot(&child_slot, outcome);
            set_ctx(None);
            child_exec.finish(tid, panic_info);
        })?;
        ctx.exec.attach_handle(tid, real);
        Ok(JoinHandle {
            inner: Some(Inner {
                exec: Arc::clone(&ctx.exec),
                tid,
                slot,
            }),
        })
    }
}

/// Spawns with the default builder, panicking on OS failure like
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match Builder::new().spawn(f) {
        Ok(h) => h,
        Err(e) => panic!("failed to spawn simulated thread: {e}"),
    }
}

struct Inner<T> {
    exec: Arc<Exec>,
    tid: usize,
    slot: Slot<T>,
}

/// Handle to a simulated thread.  `inner` is `None` only for handles
/// fabricated during teardown.
pub struct JoinHandle<T> {
    inner: Option<Inner<T>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in simulated time) until the target finishes, then
    /// reaps the real OS thread and returns the stored result.
    pub fn join(self) -> std::thread::Result<T> {
        let Some(h) = self.inner else {
            return Err(Box::new(AbortSignal));
        };
        let ctx = require_ctx();
        if let Wake::Abort = ctx.exec.park(
            ctx.tid,
            Pending {
                op: Op::simple(OpKind::Join),
                wait: Wait::ThreadDone { target: h.tid },
            },
        ) {
            abort_blocking();
            // Unwinding teardown: report whatever the child stored.
            return take_slot(&h.slot);
        }
        if let Some(real) = h.exec.take_handle(h.tid) {
            let _ = real.join();
        }
        take_slot(&h.slot)
    }

    /// A decision point plus a completion probe, so polling loops
    /// (`handles.retain(|h| !h.is_finished())`) interleave with the
    /// threads they watch.
    pub fn is_finished(&self) -> bool {
        let Some(h) = &self.inner else {
            return true;
        };
        if let Some(ctx) = current() {
            if let Wake::Abort = ctx
                .exec
                .park(ctx.tid, Pending::ready(Op::simple(OpKind::Yield)))
            {
                abort_blocking();
            }
        }
        slot_filled(&h.slot)
    }
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.inner.as_ref().map(|h| h.tid))
            .finish()
    }
}
