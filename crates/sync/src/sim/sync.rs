//! Simulated `Mutex`, `Condvar`, and `mpsc` channels.
//!
//! Data always lives behind real `std` primitives — the simulator adds
//! a *scheduling* layer on top (who may acquire when), never an
//! `unsafe` one.  During normal runs the scheduler guarantees at most
//! one thread contends for any real lock; during abort teardown the
//! real lock alone provides the exclusion.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};
use std::time::Duration;

use super::runtime::{
    abort_blocking, current, fresh_object_id, require_ctx, Op, OpKind, Pending, Wait, Wake,
};

/// A mutex whose acquisitions are scheduling decisions.  Poisoning
/// behaves like `std`: a panic while the guard is held poisons the
/// lock for later acquirers.
pub struct Mutex<T> {
    id: u64,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Mutex<T> {
        Mutex {
            id: fresh_object_id(),
            data: StdMutex::new(t),
        }
    }

    /// Parks at a decision point until the scheduler grants ownership.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = require_ctx();
        if let Wake::Abort = ctx.exec.park(
            ctx.tid,
            Pending {
                op: Op::write(self.id, OpKind::Lock),
                wait: Wait::LockFree { mutex: self.id },
            },
        ) {
            abort_blocking();
            // Unwinding teardown: the real mutex alone provides the
            // exclusion (nested-lock-free code cannot cycle on it).
        }
        self.lock_real()
    }

    fn lock_real(&self) -> LockResult<MutexGuard<'_, T>> {
        match self.data.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            })),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish()
    }
}

/// Guard for a simulated [`Mutex`].  Dropping it releases the real
/// lock first, then the simulated ownership — so by the time another
/// simulated thread is granted the lock, the real one is free.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<'a, T> MutexGuard<'a, T> {
    fn real(&self) -> &StdMutexGuard<'a, T> {
        self.inner
            .as_ref()
            .expect("sim MutexGuard used after defuse")
    }

    /// Takes the pieces out without running `Drop` — `Condvar::wait`
    /// releases the lock through the scheduler, not through the
    /// guard's destructor.
    fn defuse(mut self) -> (&'a Mutex<T>, Option<StdMutexGuard<'a, T>>) {
        let lock = self.lock;
        let inner = self.inner.take();
        std::mem::forget(self);
        (lock, inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real()
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("sim MutexGuard used after defuse")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some(ctx) = current() {
            ctx.exec.unlock(self.lock.id);
        }
    }
}

/// The simulator's `WaitTimeoutResult` (`std`'s has no public
/// constructor).  Same surface: [`WaitTimeoutResult::timed_out`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condvar with a FIFO wait queue.  `notify_one` wakes the oldest
/// waiter; no spurious wakeups are injected (callers loop on their
/// predicate anyway).  `wait_timeout` models the timeout as a
/// nondeterministic transition the scheduler may fire at any decision
/// point — the `Duration` is ignored, which *widens* coverage: every
/// "timeout raced the notify" interleaving is explored.
pub struct Condvar {
    id: u64,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            id: fresh_object_id(),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.wait_inner(guard, false) {
            Ok((g, _)) => Ok(g),
            Err(p) => Err(PoisonError::new(p.into_inner().0)),
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        self.wait_inner(guard, true)
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let ctx = require_ctx();
        let op = Op::write2(self.id, guard.lock.id, OpKind::CvWait);
        if let Wake::Abort = ctx.exec.park(ctx.tid, Pending::ready(op)) {
            abort_blocking();
            // Unwinding teardown: spurious wakeup, keep the guard.
            return Ok((guard, WaitTimeoutResult(true)));
        }
        let (lock, real) = guard.defuse();
        drop(real);
        ctx.exec.cv_enter_limbo(ctx.tid, self.id, lock.id, timed);
        let timed_out = match ctx.exec.wait_regrant(ctx.tid) {
            Wake::Abort => {
                abort_blocking();
                true
            }
            Wake::Granted { timed_out } => timed_out,
        };
        match lock.lock_real() {
            Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
            Err(p) => Err(PoisonError::new((
                p.into_inner(),
                WaitTimeoutResult(timed_out),
            ))),
        }
    }

    pub fn notify_one(&self) {
        self.notify(false);
    }

    pub fn notify_all(&self) {
        self.notify(true);
    }

    fn notify(&self, all: bool) {
        if let Some(ctx) = current() {
            if let Wake::Abort = ctx.exec.park(
                ctx.tid,
                Pending::ready(Op::write(self.id, OpKind::CvNotify)),
            ) {
                // Teardown wakes parked waiters by itself.
                abort_blocking();
                return;
            }
            ctx.exec.cv_notify_apply(self.id, all);
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").field("id", &self.id).finish()
    }
}

/// Simulated unbounded channels with `std`-compatible error types.
pub mod mpsc {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex as StdMutex};

    use super::super::runtime::{
        abort_blocking, current, fresh_object_id, require_ctx, Op, OpKind, Pending, Wait, Wake,
    };

    /// The shared backing store.  Values live in the real queue; the
    /// scheduler separately accounts the logical length and endpoint
    /// counts so enabledness checks need no `T`.
    struct Chan<T> {
        id: u64,
        q: StdMutex<VecDeque<T>>,
    }

    impl<T> Chan<T> {
        fn push(&self, t: T) {
            self.q
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(t);
        }

        fn pop(&self) -> Option<T> {
            self.q.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }
    }

    /// Creates a simulated channel.  Only valid inside
    /// `Execution::run` — channels are per-run objects.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let _ = require_ctx();
        let chan = Arc::new(Chan {
            id: fresh_object_id(),
            q: StdMutex::new(VecDeque::new()),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let ctx = require_ctx();
            if let Wake::Abort = ctx.exec.park(
                ctx.tid,
                Pending::ready(Op::write(self.chan.id, OpKind::Send)),
            ) {
                abort_blocking();
            }
            if !ctx.exec.chan_rx_alive(self.chan.id) {
                return Err(SendError(t));
            }
            // Real push before the accounted length bump: an accounted
            // value always has a real value behind it.
            self.chan.push(t);
            ctx.exec.chan_len_inc(self.chan.id);
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            if let Some(ctx) = current() {
                ctx.exec.chan_sender_cloned(self.chan.id);
            }
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let Some(ctx) = current() {
                // The drop is a visible event (it can disconnect the
                // receiver) but never a teardown kill — destructors
                // must not panic mid-unwind.
                if !ctx.exec.aborted() && !std::thread::panicking() {
                    let _ = ctx.exec.park(
                        ctx.tid,
                        Pending::ready(Op::write(self.chan.id, OpKind::SenderDrop)),
                    );
                }
                ctx.exec.chan_sender_dropped(self.chan.id);
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").field("id", &self.chan.id).finish()
        }
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks (in simulated time) until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let ctx = require_ctx();
            if let Wake::Abort = ctx.exec.park(
                ctx.tid,
                Pending {
                    op: Op::write(self.chan.id, OpKind::Recv),
                    wait: Wait::ChanReadable { chan: self.chan.id },
                },
            ) {
                abort_blocking();
                return self.chan.pop().ok_or(RecvError);
            }
            if ctx.exec.chan_len_dec(self.chan.id) {
                // Accounting invariant: a logical value has a real one.
                self.chan.pop().ok_or(RecvError)
            } else {
                // Enabled with an empty queue means no senders remain.
                Err(RecvError)
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let ctx = require_ctx();
            if let Wake::Abort = ctx.exec.park(
                ctx.tid,
                Pending::ready(Op::write(self.chan.id, OpKind::TryRecv)),
            ) {
                abort_blocking();
                return self.chan.pop().ok_or(TryRecvError::Disconnected);
            }
            if ctx.exec.chan_len_dec(self.chan.id) {
                self.chan.pop().ok_or(TryRecvError::Disconnected)
            } else if ctx.exec.chan_senders(self.chan.id) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let Some(ctx) = current() {
                if !ctx.exec.aborted() && !std::thread::panicking() {
                    let _ = ctx.exec.park(
                        ctx.tid,
                        Pending::ready(Op::write(self.chan.id, OpKind::ReceiverDrop)),
                    );
                }
                ctx.exec.chan_rx_dropped(self.chan.id);
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver")
                .field("id", &self.chan.id)
                .finish()
        }
    }

    /// Owning iterator: yields until the channel disconnects, like
    /// `std`'s.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }
}
