//! The deterministic concurrency simulator.
//!
//! This module is compiled unconditionally (so the ordinary test suite
//! exercises it); the `naps_sim` cfg only decides whether the facade
//! names at the crate root resolve to `std` or to the types here.
//!
//! ## Execution model
//!
//! A simulated run ([`Execution::run`]) executes a closure on real OS
//! threads under a **baton** discipline: at most one simulated thread
//! runs between *decision points*, and every visible operation — lock
//! acquire, condvar wait/notify, channel send/recv, atomic access,
//! spawn, join — is a decision point.  Before each visible operation
//! the thread parks and a scheduler picks who proceeds, either by
//! following a forced [`Schedule`] prefix (replay) or by a default
//! run-to-block policy.  The full decision trace is recorded, so any
//! run can be replayed exactly from its choice list.
//!
//! ## What is modeled
//!
//! * `Mutex` ownership (a critical section is one decision — acquire;
//!   release re-enables blocked lockers at the next decision point),
//! * `Condvar` wait queues with FIFO `notify_one`, `notify_all`, and
//!   `wait_timeout` modeled as a nondeterministic timeout transition
//!   that is always schedulable (no spurious wakeups are injected),
//! * unbounded `mpsc` channels with sender counting and disconnect,
//! * atomics as sequentially-consistent shared cells (the simulator
//!   explores thread interleavings, not weak-memory reorderings; the
//!   `Ordering` argument is preserved but not weakened),
//! * thread spawn/join and panic propagation: the first panic on any
//!   simulated thread ends the run as a [`Outcome::Panic`] failure, and
//!   a run in which every unfinished thread is blocked is reported as
//!   [`Outcome::Deadlock`].
//!
//! ## Teardown
//!
//! When a run ends early (failure, depth bound, sleep-set prune) the
//! scheduler switches to *abort mode*: parked threads are released,
//! every subsequent decision point is a free pass, condvar waits return
//! spuriously and receives drain or disconnect, so all threads run to
//! completion under their real (std) locks and the process is reusable
//! for the next schedule.  Failures observed during abort teardown are
//! deliberately not recorded — only the primary outcome counts.

mod runtime;

pub mod atomic;
pub mod sync;
pub mod thread;

pub use runtime::{
    dependent, Access, DecisionRecord, Execution, Limits, Op, OpKind, Outcome, RunResult, Schedule,
};
