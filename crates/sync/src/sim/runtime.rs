//! The cooperative scheduler: thread registry, decision loop, sleep
//! sets, abort teardown, and the per-run trace.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Fallback id source for objects created *outside* any execution
/// (test scaffolding, statics).  Starts at 1 and stays far below the
/// per-run range.
static NEXT_OBJECT: AtomicU64 = AtomicU64::new(1);

/// First id handed out by a run's own counter.  Keeping the two
/// ranges disjoint means a pre-run object can never collide with a
/// run-created one.
const RUN_OBJECT_BASE: u64 = 1 << 32;

/// Ids are **deterministic per schedule prefix**: objects created
/// inside a run draw from the run's own counter, and since exactly one
/// thread executes between decision points, the same forced prefix
/// creates the same objects in the same order.  That is what lets a
/// sleep set recorded in one run be meaningfully re-injected into a
/// sibling run.
pub(crate) fn fresh_object_id() -> u64 {
    match current() {
        Some(ctx) => ctx.exec.fresh_run_object_id(),
        // ordering: a unique-id counter — uniqueness is all that matters.
        None => NEXT_OBJECT.fetch_add(1, Ordering::Relaxed),
    }
}

/// Whether an operation reads or mutates its object.  Two reads of the
/// same object commute; everything else on a shared object does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

/// What kind of visible operation a decision executed — for trace
/// display and deadlock reports; the dependency relation only looks at
/// the objects and the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A freshly spawned thread's first scheduling.
    Start,
    Yield,
    Sleep,
    Spawn,
    Join,
    Lock,
    CvWait,
    /// A `wait_timeout` firing instead of being notified.
    CvTimeout,
    CvNotify,
    Send,
    Recv,
    TryRecv,
    SenderDrop,
    ReceiverDrop,
    Load,
    Store,
    Rmw,
}

/// One visible operation.  `obj` is the primary object; `obj2` is a
/// secondary object for operations that touch two (a condvar wait also
/// releases its mutex).  `0` means "no object".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    pub obj: u64,
    pub obj2: u64,
    pub access: Access,
    pub kind: OpKind,
}

impl Op {
    pub(crate) fn simple(kind: OpKind) -> Op {
        Op {
            obj: 0,
            obj2: 0,
            access: Access::Read,
            kind,
        }
    }

    pub(crate) fn write(obj: u64, kind: OpKind) -> Op {
        Op {
            obj,
            obj2: 0,
            access: Access::Write,
            kind,
        }
    }

    pub(crate) fn write2(obj: u64, obj2: u64, kind: OpKind) -> Op {
        Op {
            obj,
            obj2,
            access: Access::Write,
            kind,
        }
    }

    fn touches(&self, obj: u64) -> bool {
        obj != 0 && (self.obj == obj || self.obj2 == obj)
    }
}

/// The dependency relation for sleep-set pruning: two operations are
/// dependent iff they share a (nonzero) object and at least one
/// writes.  Independent operations commute, so a schedule that only
/// swaps adjacent independent operations reaches the same state.
pub fn dependent(a: &Op, b: &Op) -> bool {
    let share = a.touches(b.obj) || a.touches(b.obj2);
    share && !(a.access == Access::Read && b.access == Access::Read)
}

/// A (possibly empty) forced schedule prefix plus the sleep set in
/// effect at its final decision.  The explorer builds these from prior
/// traces; an empty default explores from the root with the default
/// policy.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Thread ids to force, one per decision, from the first decision.
    pub choices: Vec<usize>,
    /// Sleep set (thread, its pending op) injected at the last forced
    /// decision — threads whose subtrees are already covered elsewhere.
    pub sleep: Vec<(usize, Op)>,
}

/// Per-run resource bounds.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum decisions before the run is cut as [`Outcome::DepthBounded`].
    pub max_decisions: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_decisions: 5_000,
        }
    }
}

/// One scheduling decision, as recorded in the trace.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    /// Every enabled thread at this decision (before sleep filtering),
    /// with the op it would execute, sorted by thread id.
    pub candidates: Vec<(usize, Op)>,
    /// The sleep set in effect at this decision.
    pub sleeping: Vec<(usize, Op)>,
    /// The thread that held the baton before this decision.
    pub from: Option<usize>,
    pub chosen: usize,
    pub chosen_op: Op,
    /// Whether this decision preempted a thread that could have
    /// continued.
    pub preemptive: bool,
    /// Cumulative preemptions in the run before this decision.
    pub preemptions_before: usize,
    /// Whether the choice came from the forced schedule prefix.
    pub forced: bool,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every thread finished, no failure.
    Complete,
    /// Every enabled thread was in the sleep set — the subtree is
    /// covered by sibling schedules; not a failure and not a full run.
    Pruned,
    /// The decision bound was hit; the run tells us nothing further.
    DepthBounded,
    /// No thread was runnable but not all had finished.  Each entry
    /// describes one blocked thread.
    Deadlock(Vec<String>),
    /// A simulated thread panicked (an assert in a model, or a real
    /// bug surfaced by the schedule).
    Panic { thread: usize, message: String },
    /// A forced choice named a thread that was not enabled — the
    /// schedule came from a different program or a nondeterministic
    /// model.
    ReplayDivergence { at: usize, wanted: usize },
}

impl Outcome {
    /// Whether this outcome is a checker finding (as opposed to a
    /// clean, pruned, or bounded run).
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Outcome::Deadlock(_) | Outcome::Panic { .. } | Outcome::ReplayDivergence { .. }
        )
    }
}

/// The result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub outcome: Outcome,
    pub trace: Vec<DecisionRecord>,
}

impl RunResult {
    /// The choice list that replays this run exactly.
    pub fn choices(&self) -> Vec<usize> {
        self.trace.iter().map(|d| d.chosen).collect()
    }
}

// ---------------------------------------------------------------------------
// Internal scheduler state
// ---------------------------------------------------------------------------

/// What a parked thread is waiting for.
#[derive(Debug, Clone)]
pub(crate) enum Wait {
    /// Nothing — enabled as soon as scheduled.
    Ready,
    /// The mutex must be free.
    LockFree { mutex: u64 },
    /// A condvar waiter re-acquiring its mutex after notify/timeout.
    Reacquire { mutex: u64, timed_out: bool },
    /// The channel must have a value or no remaining senders.
    ChanReadable { chan: u64 },
    /// The target thread must have finished.
    ThreadDone { target: usize },
}

/// A parked thread's proposed next operation.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub op: Op,
    pub wait: Wait,
}

impl Pending {
    pub(crate) fn ready(op: Op) -> Pending {
        Pending {
            op,
            wait: Wait::Ready,
        }
    }
}

#[derive(Debug, Clone)]
enum TStatus {
    /// Holds the baton, executing user code.
    Running,
    /// At a decision point, waiting to be scheduled.
    Parked(Pending),
    /// Inside `Condvar::wait`, not yet notified.  If `timed`, the
    /// thread is schedulable (scheduling it fires the timeout).
    CvLimbo {
        cv: u64,
        mutex: u64,
        timed: bool,
    },
    Finished,
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<usize>,
}

#[derive(Debug)]
struct ChanState {
    len: usize,
    senders: usize,
    rx_alive: bool,
}

impl Default for ChanState {
    fn default() -> Self {
        ChanState {
            len: 0,
            senders: 1,
            rx_alive: true,
        }
    }
}

/// What a parked thread learns when it wakes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Wake {
    /// Scheduled normally.  `timed_out` is meaningful only after a
    /// condvar reacquire.
    Granted { timed_out: bool },
    /// The run is tearing down — free-pass the operation.
    Abort,
}

struct ExecState {
    threads: Vec<TStatus>,
    active: Option<usize>,
    last_active: Option<usize>,
    schedule: Schedule,
    cursor: usize,
    sleep: Vec<(usize, Op)>,
    trace: Vec<DecisionRecord>,
    max_decisions: usize,
    preemptions: usize,
    outcome: Option<Outcome>,
    abort: bool,
    mutexes: HashMap<u64, MutexState>,
    cvs: HashMap<u64, Vec<usize>>,
    chans: HashMap<u64, ChanState>,
    real_handles: Vec<Option<std::thread::JoinHandle<()>>>,
}

impl ExecState {
    fn new(schedule: Schedule, limits: &Limits) -> ExecState {
        ExecState {
            threads: vec![TStatus::Running],
            active: Some(0),
            last_active: Some(0),
            schedule,
            cursor: 0,
            sleep: Vec::new(),
            trace: Vec::new(),
            max_decisions: limits.max_decisions.max(1),
            preemptions: 0,
            outcome: None,
            abort: false,
            mutexes: HashMap::new(),
            cvs: HashMap::new(),
            chans: HashMap::new(),
            real_handles: vec![None],
        }
    }

    fn mutex_mut(&mut self, id: u64) -> &mut MutexState {
        self.mutexes.entry(id).or_default()
    }

    fn chan_mut(&mut self, id: u64) -> &mut ChanState {
        self.chans.entry(id).or_default()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| matches!(t, TStatus::Finished))
    }

    fn sleeping(&self, tid: usize) -> bool {
        self.sleep.iter().any(|(t, _)| *t == tid)
    }

    /// Every thread that could execute its next operation right now,
    /// with that operation.  Timed condvar waiters are schedulable —
    /// scheduling one fires its timeout.
    fn candidates(&self) -> Vec<(usize, Op)> {
        let mut out = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            match t {
                TStatus::Parked(p) => {
                    let enabled = match p.wait {
                        Wait::Ready => true,
                        Wait::LockFree { mutex } | Wait::Reacquire { mutex, .. } => {
                            self.mutexes.get(&mutex).is_none_or(|m| m.owner.is_none())
                        }
                        Wait::ChanReadable { chan } => self
                            .chans
                            .get(&chan)
                            .is_some_and(|c| c.len > 0 || c.senders == 0),
                        Wait::ThreadDone { target } => {
                            matches!(self.threads[target], TStatus::Finished)
                        }
                    };
                    if enabled {
                        out.push((tid, p.op));
                    }
                }
                TStatus::CvLimbo {
                    cv,
                    mutex,
                    timed: true,
                } => {
                    out.push((tid, Op::write2(*cv, *mutex, OpKind::CvTimeout)));
                }
                _ => {}
            }
        }
        out
    }

    fn blocked_report(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            match t {
                TStatus::Parked(p) => {
                    let what = match &p.wait {
                        Wait::Ready => continue,
                        Wait::LockFree { mutex } | Wait::Reacquire { mutex, .. } => {
                            format!("lock mutex#{mutex}")
                        }
                        Wait::ChanReadable { chan } => format!("recv on chan#{chan}"),
                        Wait::ThreadDone { target } => format!("join t{target}"),
                    };
                    out.push(format!("t{tid} blocked: {what}"));
                }
                TStatus::CvLimbo { cv, mutex, .. } => {
                    out.push(format!("t{tid} waiting on cv#{cv} (mutex#{mutex})"));
                }
                _ => {}
            }
        }
        out
    }

    /// The decision loop: runs whenever no thread holds the baton.
    /// Picks the next thread (forced prefix first, then the default
    /// run-to-block policy over non-sleeping candidates), records the
    /// decision, evolves the sleep set, and grants the baton.  Condvar
    /// timeouts are scheduler-side transitions and loop for another
    /// decision.
    fn decide(&mut self) {
        loop {
            if self.abort || self.active.is_some() {
                return;
            }
            let candidates = self.candidates();
            if candidates.is_empty() {
                if !self.all_finished() {
                    self.outcome = Some(Outcome::Deadlock(self.blocked_report()));
                    self.abort = true;
                }
                return;
            }
            let forced = self.cursor < self.schedule.choices.len();
            let chosen = if forced {
                let want = self.schedule.choices[self.cursor];
                if !candidates.iter().any(|(t, _)| *t == want) {
                    self.outcome = Some(Outcome::ReplayDivergence {
                        at: self.cursor,
                        wanted: want,
                    });
                    self.abort = true;
                    return;
                }
                want
            } else {
                let free: Vec<usize> = candidates
                    .iter()
                    .filter(|(t, _)| !self.sleeping(*t))
                    .map(|(t, _)| *t)
                    .collect();
                let Some(first) = free.first() else {
                    // Every enabled thread sleeps: this subtree is
                    // covered by sibling schedules.
                    self.outcome = Some(Outcome::Pruned);
                    self.abort = true;
                    return;
                };
                self.last_active
                    .filter(|la| free.contains(la))
                    .unwrap_or(*first)
            };
            let chosen_op = candidates
                .iter()
                .find(|(t, _)| *t == chosen)
                .map(|(_, op)| *op)
                .unwrap_or(Op::simple(OpKind::Yield));
            // Entering the branch decision: install the sleep set the
            // explorer computed for this node, so evolution past it is
            // exact.
            if forced && self.cursor + 1 == self.schedule.choices.len() {
                self.sleep = self.schedule.sleep.clone();
            }
            let preemptive = match self.last_active {
                Some(last) => last != chosen && candidates.iter().any(|(t, _)| *t == last),
                None => false,
            };
            self.trace.push(DecisionRecord {
                candidates: candidates.clone(),
                sleeping: self.sleep.clone(),
                from: self.last_active,
                chosen,
                chosen_op,
                preemptive,
                preemptions_before: self.preemptions,
                forced,
            });
            if preemptive {
                self.preemptions += 1;
            }
            self.cursor += 1;
            if self.trace.len() >= self.max_decisions {
                self.outcome = Some(Outcome::DepthBounded);
                self.abort = true;
                return;
            }
            // An executed dependent operation wakes sleepers; the
            // chosen thread itself can never stay asleep.
            self.sleep
                .retain(|(t, op)| *t != chosen && !dependent(op, &chosen_op));
            match self.threads[chosen].clone() {
                TStatus::CvLimbo { cv, mutex, .. } => {
                    // Fire the timeout: leave the wait queue and become
                    // an ordinary reacquiring lock-waiter.  That
                    // reacquire needs its own decision.
                    if let Some(q) = self.cvs.get_mut(&cv) {
                        q.retain(|t| *t != chosen);
                    }
                    self.threads[chosen] = TStatus::Parked(Pending {
                        op: Op::write(mutex, OpKind::Lock),
                        wait: Wait::Reacquire {
                            mutex,
                            timed_out: true,
                        },
                    });
                    self.last_active = Some(chosen);
                }
                TStatus::Parked(p) => {
                    if let Wait::LockFree { mutex } | Wait::Reacquire { mutex, .. } = p.wait {
                        self.mutex_mut(mutex).owner = Some(chosen);
                    }
                    self.active = Some(chosen);
                    self.last_active = Some(chosen);
                    return;
                }
                // Running/Finished threads are never candidates.
                _ => return,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The shared execution handle
// ---------------------------------------------------------------------------

pub(crate) struct Exec {
    st: StdMutex<ExecState>,
    cv: StdCondvar,
    next_object: AtomicU64,
}

impl Exec {
    fn new(schedule: Schedule, limits: &Limits) -> Exec {
        Exec {
            st: StdMutex::new(ExecState::new(schedule, limits)),
            cv: StdCondvar::new(),
            next_object: AtomicU64::new(RUN_OBJECT_BASE),
        }
    }

    fn fresh_run_object_id(&self) -> u64 {
        // ordering: a unique-id counter — creation order is serialized
        // by the baton anyway.
        self.next_object.fetch_add(1, Ordering::Relaxed)
    }

    fn lock_st(&self) -> StdMutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until this thread is granted the baton (or the run is
    /// aborting).  Must be entered with the state lock held.
    fn wait_granted(&self, mut st: StdMutexGuard<'_, ExecState>, tid: usize) -> Wake {
        loop {
            if st.abort {
                return Wake::Abort;
            }
            if st.active == Some(tid) {
                let timed_out = match &st.threads[tid] {
                    TStatus::Parked(p) => {
                        matches!(
                            p.wait,
                            Wait::Reacquire {
                                timed_out: true,
                                ..
                            }
                        )
                    }
                    _ => false,
                };
                st.threads[tid] = TStatus::Running;
                return Wake::Granted { timed_out };
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Parks the calling thread at a decision point with its proposed
    /// next operation, runs the scheduler, and blocks until granted.
    pub(crate) fn park(&self, tid: usize, pending: Pending) -> Wake {
        let mut st = self.lock_st();
        if st.abort {
            return Wake::Abort;
        }
        st.threads[tid] = TStatus::Parked(pending);
        if st.active == Some(tid) {
            st.active = None;
        }
        st.decide();
        self.cv.notify_all();
        self.wait_granted(st, tid)
    }

    /// A fresh thread's first block, waiting for its `Start` grant.
    pub(crate) fn wait_start(&self, tid: usize) -> Wake {
        let st = self.lock_st();
        self.wait_granted(st, tid)
    }

    /// Second half of `Condvar::wait`: atomically release the mutex and
    /// enter the wait queue, then hand the baton back.
    pub(crate) fn cv_enter_limbo(&self, tid: usize, cv: u64, mutex: u64, timed: bool) {
        let mut st = self.lock_st();
        if st.abort {
            return;
        }
        st.mutex_mut(mutex).owner = None;
        st.cvs.entry(cv).or_default().push(tid);
        st.threads[tid] = TStatus::CvLimbo { cv, mutex, timed };
        if st.active == Some(tid) {
            st.active = None;
        }
        st.decide();
        self.cv.notify_all();
    }

    /// Blocks a condvar waiter until its reacquire is granted (after a
    /// notify or a fired timeout).
    pub(crate) fn wait_regrant(&self, tid: usize) -> Wake {
        let st = self.lock_st();
        self.wait_granted(st, tid)
    }

    /// Applies a notify: moves waiters (FIFO for `notify_one`) from the
    /// wait queue to reacquiring lock-waiters.
    pub(crate) fn cv_notify_apply(&self, cv: u64, all: bool) {
        let mut st = self.lock_st();
        while let Some(tid) = st
            .cvs
            .get_mut(&cv)
            .and_then(|q| (!q.is_empty()).then(|| q.remove(0)))
        {
            if let TStatus::CvLimbo { mutex, .. } = st.threads[tid] {
                st.threads[tid] = TStatus::Parked(Pending {
                    op: Op::write(mutex, OpKind::Lock),
                    wait: Wait::Reacquire {
                        mutex,
                        timed_out: false,
                    },
                });
            }
            if !all {
                break;
            }
        }
        self.cv.notify_all();
    }

    /// Releases sim-level mutex ownership (real data stays protected by
    /// the real `std` mutex inside the facade type).  Not a decision
    /// point: the critical section is one decision.
    pub(crate) fn unlock(&self, mutex: u64) {
        let mut st = self.lock_st();
        st.mutex_mut(mutex).owner = None;
        if !st.abort && st.active.is_none() {
            st.decide();
        }
        self.cv.notify_all();
    }

    /// Registers a new simulated thread (parked on its `Start` op) and
    /// returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_st();
        st.threads
            .push(TStatus::Parked(Pending::ready(Op::simple(OpKind::Start))));
        st.real_handles.push(None);
        st.threads.len() - 1
    }

    pub(crate) fn attach_handle(&self, tid: usize, h: std::thread::JoinHandle<()>) {
        let mut st = self.lock_st();
        st.real_handles[tid] = Some(h);
    }

    pub(crate) fn take_handle(&self, tid: usize) -> Option<std::thread::JoinHandle<()>> {
        let mut st = self.lock_st();
        st.real_handles[tid].take()
    }

    /// Marks a thread finished.  The first non-teardown panic becomes
    /// the run's failure outcome.
    pub(crate) fn finish(&self, tid: usize, panic_info: Option<(bool, String)>) {
        let mut st = self.lock_st();
        st.threads[tid] = TStatus::Finished;
        if let Some((is_abort_signal, message)) = panic_info {
            if !is_abort_signal && !st.abort {
                st.outcome = Some(Outcome::Panic {
                    thread: tid,
                    message,
                });
                st.abort = true;
            }
        }
        if st.active == Some(tid) {
            st.active = None;
        }
        if !st.abort && st.active.is_none() {
            st.decide();
        }
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut st = self.lock_st();
        loop {
            if st.all_finished() {
                return;
            }
            if !st.abort && st.active.is_none() {
                st.decide();
                self.cv.notify_all();
                continue;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn drain_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        let mut st = self.lock_st();
        let handles: Vec<_> = st
            .real_handles
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        handles
    }

    fn result(&self) -> RunResult {
        let st = self.lock_st();
        RunResult {
            outcome: st.outcome.clone().unwrap_or(Outcome::Complete),
            trace: st.trace.clone(),
        }
    }

    pub(crate) fn aborted(&self) -> bool {
        self.lock_st().abort
    }

    // -- channel accounting (values live in the facade's real queues;
    //    the scheduler tracks only lengths and endpoint counts) --

    pub(crate) fn chan_rx_alive(&self, chan: u64) -> bool {
        let mut st = self.lock_st();
        st.chan_mut(chan).rx_alive
    }

    pub(crate) fn chan_len_inc(&self, chan: u64) {
        let mut st = self.lock_st();
        st.chan_mut(chan).len += 1;
    }

    /// Takes one accounted value if any; `false` means the channel is
    /// logically empty (the caller then reports empty/disconnected).
    pub(crate) fn chan_len_dec(&self, chan: u64) -> bool {
        let mut st = self.lock_st();
        let c = st.chan_mut(chan);
        if c.len > 0 {
            c.len -= 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn chan_senders(&self, chan: u64) -> usize {
        let mut st = self.lock_st();
        st.chan_mut(chan).senders
    }

    pub(crate) fn chan_sender_cloned(&self, chan: u64) {
        let mut st = self.lock_st();
        st.chan_mut(chan).senders += 1;
    }

    pub(crate) fn chan_sender_dropped(&self, chan: u64) {
        let mut st = self.lock_st();
        let c = st.chan_mut(chan);
        c.senders = c.senders.saturating_sub(1);
        self.cv.notify_all();
    }

    pub(crate) fn chan_rx_dropped(&self, chan: u64) {
        let mut st = self.lock_st();
        st.chan_mut(chan).rx_alive = false;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Thread-local context and abort teardown
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Exec>,
    pub tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static ABORT_OPS: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
    ABORT_OPS.with(|c| c.set(0));
}

pub(crate) fn require_ctx() -> Ctx {
    current().expect(
        "naps-sync simulated primitive used outside Execution::run — \
         simulated Mutex/Condvar/mpsc/thread only work under the naps-sim scheduler",
    )
}

/// The panic payload used to terminate simulated threads during
/// teardown.  Never recorded as a failure.
pub(crate) struct AbortSignal;

/// Teardown at a *blocking* decision point (lock, cv wait, recv,
/// join, spawn, sleep): kill the thread with [`AbortSignal`] so its
/// held guards release on the unwind.  Running the operation for real
/// instead could re-create the very deadlock the scheduler just
/// detected.  A thread that is already unwinding cannot be panicked
/// again (that would abort the process); it returns and the caller
/// free-passes the operation in a way that cannot block.
pub(crate) fn abort_blocking() {
    if !std::thread::panicking() {
        panic::panic_any(AbortSignal);
    }
}

const ABORT_OP_LIMIT: u64 = 200_000;

/// Teardown at a *non-blocking* decision point (atomics): the real
/// operation proceeds, but a counter bounds how much free running a
/// thread gets (a spin loop whose partner aborted would otherwise
/// never terminate) before it too is killed with [`AbortSignal`].
pub(crate) fn abort_tick() {
    ABORT_OPS.with(|c| {
        let n = c.get() + 1;
        c.set(n);
        if n > ABORT_OP_LIMIT && !std::thread::panicking() {
            panic::panic_any(AbortSignal);
        }
    });
}

pub(crate) fn payload_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if p.is::<AbortSignal>() {
        "<sim teardown>".to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs closures under the simulated scheduler.
pub struct Execution;

/// Silences the default panic output for simulated threads: their
/// panics are deliberate (invariant asserts, teardown aborts) and are
/// recorded in the run outcome, so the stderr trace is pure noise —
/// an exploration triggers thousands of them.  Panics on threads with
/// no simulation context still reach the previous hook.
fn install_quiet_hook() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if current().is_none() {
                prev(info);
            }
        }));
    });
}

impl Execution {
    /// Executes `f` as simulated thread 0 under `schedule`'s forced
    /// prefix (empty = default policy), returning the outcome and the
    /// full decision trace.  `f` runs on the calling thread; threads it
    /// spawns through the facade become simulated threads.  The call
    /// returns only after every simulated thread has finished (aborting
    /// ones are torn down in free-pass mode).
    pub fn run<F: FnOnce()>(schedule: &Schedule, limits: &Limits, f: F) -> RunResult {
        assert!(
            current().is_none(),
            "nested Execution::run on one OS thread is not supported"
        );
        install_quiet_hook();
        let exec = Arc::new(Exec::new(schedule.clone(), limits));
        set_ctx(Some(Ctx {
            exec: Arc::clone(&exec),
            tid: 0,
        }));
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        let panic_info = match &result {
            Ok(()) => None,
            Err(p) => Some((p.is::<AbortSignal>(), payload_msg(p.as_ref()))),
        };
        exec.finish(0, panic_info);
        exec.wait_all_finished();
        set_ctx(None);
        for h in exec.drain_handles() {
            let _ = h.join();
        }
        exec.result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::sync::{mpsc, Condvar, Mutex};
    use crate::sim::thread;

    fn run_default(f: impl FnOnce()) -> RunResult {
        Execution::run(&Schedule::default(), &Limits::default(), f)
    }

    #[test]
    fn empty_body_completes_with_no_decisions() {
        let r = run_default(|| {});
        assert_eq!(r.outcome, Outcome::Complete);
        assert!(r.trace.is_empty());
    }

    #[test]
    fn spawn_join_mutex_counting() {
        let r = run_default(|| {
            let m = std::sync::Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..3 {
                let m = std::sync::Arc::clone(&m);
                handles.push(thread::spawn(move || {
                    for _ in 0..5 {
                        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                        *g += 1;
                    }
                }));
            }
            for h in handles {
                h.join().expect("worker ok");
            }
            assert_eq!(*m.lock().unwrap_or_else(|e| e.into_inner()), 15);
        });
        assert_eq!(r.outcome, Outcome::Complete, "{:?}", r.outcome);
        assert!(!r.trace.is_empty());
    }

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let r = run_default(|| {
            let (tx, rx) = mpsc::channel::<u32>();
            let h = thread::spawn(move || {
                tx.send(7).expect("rx alive");
                // tx drops here
            });
            assert_eq!(rx.recv(), Ok(7));
            assert!(rx.recv().is_err(), "disconnect after sender drop");
            h.join().expect("sender ok");
        });
        assert_eq!(r.outcome, Outcome::Complete, "{:?}", r.outcome);
    }

    #[test]
    fn condvar_handoff() {
        let r = run_default(|| {
            let shared = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = std::sync::Arc::clone(&shared);
            let h = thread::spawn(move || {
                let (m, cv) = &*s2;
                let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                *g = true;
                drop(g);
                cv.notify_one();
            });
            let (m, cv) = &*shared;
            let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
            while !*g {
                g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            drop(g);
            h.join().expect("notifier ok");
        });
        assert_eq!(r.outcome, Outcome::Complete, "{:?}", r.outcome);
    }

    #[test]
    fn child_panic_is_the_outcome() {
        let r = run_default(|| {
            let h = thread::spawn(|| panic!("model invariant violated"));
            let _ = h.join();
        });
        match r.outcome {
            Outcome::Panic {
                thread,
                ref message,
            } => {
                assert_eq!(thread, 1);
                assert!(message.contains("model invariant violated"));
            }
            ref o => panic!("expected panic outcome, got {o:?}"),
        }
    }

    #[test]
    fn self_deadlock_is_detected() {
        let r = run_default(|| {
            let m = Mutex::new(());
            let _g1 = m.lock();
            let _g2 = m.lock(); // re-entrant: blocks forever
        });
        match r.outcome {
            Outcome::Deadlock(ref blocked) => assert_eq!(blocked.len(), 1, "{blocked:?}"),
            ref o => panic!("expected deadlock, got {o:?}"),
        }
    }

    #[test]
    fn lost_wakeup_deadlock_is_detected() {
        let r = run_default(|| {
            let shared = std::sync::Arc::new((Mutex::new(()), Condvar::new()));
            let s2 = std::sync::Arc::clone(&shared);
            let h = thread::spawn(move || {
                let (m, cv) = &*s2;
                let g = m.lock().unwrap_or_else(|e| e.into_inner());
                // Nobody ever notifies: an untimed wait blocks forever.
                let _ = cv.wait(g);
            });
            let _ = h.join();
        });
        assert!(matches!(r.outcome, Outcome::Deadlock(_)), "{:?}", r.outcome);
    }

    #[test]
    fn wait_timeout_can_fire_instead_of_blocking() {
        // Same lost-wakeup shape, but with wait_timeout: the timeout
        // transition keeps the schedule alive and the run completes.
        let r = run_default(|| {
            let shared = std::sync::Arc::new((Mutex::new(()), Condvar::new()));
            let s2 = std::sync::Arc::clone(&shared);
            let h = thread::spawn(move || {
                let (m, cv) = &*s2;
                let g = m.lock().unwrap_or_else(|e| e.into_inner());
                let (g, res) = cv
                    .wait_timeout(g, std::time::Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
                assert!(res.timed_out());
                drop(g);
            });
            h.join().expect("waiter ok");
        });
        assert_eq!(r.outcome, Outcome::Complete, "{:?}", r.outcome);
    }

    #[test]
    fn depth_bound_cuts_the_run() {
        let r = Execution::run(&Schedule::default(), &Limits { max_decisions: 10 }, || {
            let a = crate::sim::atomic::AtomicU64::new(0);
            for _ in 0..100 {
                // ordering: sim test traffic, any ordering works.
                a.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert_eq!(r.outcome, Outcome::DepthBounded);
        assert_eq!(r.trace.len(), 10);
    }

    #[test]
    fn replay_reproduces_the_same_trace() {
        let body = || {
            let m = std::sync::Arc::new(Mutex::new(0u32));
            let m2 = std::sync::Arc::clone(&m);
            let h = thread::spawn(move || {
                *m2.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            });
            *m.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            h.join().expect("ok");
        };
        let first = run_default(body);
        assert_eq!(first.outcome, Outcome::Complete);
        let replay = Execution::run(
            &Schedule {
                choices: first.choices(),
                sleep: Vec::new(),
            },
            &Limits::default(),
            body,
        );
        assert_eq!(replay.outcome, Outcome::Complete);
        assert_eq!(replay.choices(), first.choices());
    }

    #[test]
    fn replay_divergence_is_reported() {
        let r = Execution::run(
            &Schedule {
                choices: vec![42],
                sleep: Vec::new(),
            },
            &Limits::default(),
            || {
                let m = Mutex::new(());
                drop(m.lock());
            },
        );
        assert!(
            matches!(r.outcome, Outcome::ReplayDivergence { at: 0, wanted: 42 }),
            "{:?}",
            r.outcome
        );
    }
}
