//! Simulated atomics: every load/store/RMW is a scheduling decision
//! on the cell's object, backed by a real `std` atomic.  The simulator
//! explores thread interleavings under sequential consistency; the
//! `Ordering` argument is passed through to the real cell but is not
//! weakened further (weak-memory reorderings are out of scope and the
//! limitation is documented on [`crate::sim`]).

use std::fmt;
use std::sync::atomic::{self, Ordering};

use super::runtime::{abort_tick, current, fresh_object_id, Access, Op, OpKind, Pending, Wake};

/// One decision point per atomic access.  Outside a run the access is
/// just the real operation (construction in test scaffolding, metrics
/// rendered after a run, …).  During teardown the real operation
/// proceeds, with a budget that eventually kills spin loops whose
/// partner thread is gone.
fn sim_point(obj: u64, access: Access, kind: OpKind) {
    if let Some(ctx) = current() {
        if let Wake::Abort = ctx.exec.park(
            ctx.tid,
            Pending::ready(Op {
                obj,
                obj2: 0,
                access,
                kind,
            }),
        ) {
            abort_tick();
        }
    }
}

macro_rules! int_atomic {
    ($name:ident, $int:ty) => {
        pub struct $name {
            id: u64,
            cell: atomic::$name,
        }

        impl $name {
            pub fn new(v: $int) -> $name {
                $name {
                    id: fresh_object_id(),
                    cell: atomic::$name::new(v),
                }
            }

            pub fn load(&self, order: Ordering) -> $int {
                sim_point(self.id, Access::Read, OpKind::Load);
                self.cell.load(order)
            }

            pub fn store(&self, val: $int, order: Ordering) {
                sim_point(self.id, Access::Write, OpKind::Store);
                self.cell.store(val, order)
            }

            pub fn fetch_add(&self, val: $int, order: Ordering) -> $int {
                sim_point(self.id, Access::Write, OpKind::Rmw);
                self.cell.fetch_add(val, order)
            }

            pub fn fetch_sub(&self, val: $int, order: Ordering) -> $int {
                sim_point(self.id, Access::Write, OpKind::Rmw);
                self.cell.fetch_sub(val, order)
            }

            pub fn fetch_max(&self, val: $int, order: Ordering) -> $int {
                sim_point(self.id, Access::Write, OpKind::Rmw);
                self.cell.fetch_max(val, order)
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // ordering: Debug snapshot, any value is fine.
                let v = self.cell.load(Ordering::Relaxed);
                f.debug_tuple(stringify!($name)).field(&v).finish()
            }
        }
    };
}

int_atomic!(AtomicU64, u64);
int_atomic!(AtomicUsize, usize);

pub struct AtomicBool {
    id: u64,
    cell: atomic::AtomicBool,
}

impl AtomicBool {
    pub fn new(v: bool) -> AtomicBool {
        AtomicBool {
            id: fresh_object_id(),
            cell: atomic::AtomicBool::new(v),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        sim_point(self.id, Access::Read, OpKind::Load);
        self.cell.load(order)
    }

    pub fn store(&self, val: bool, order: Ordering) {
        sim_point(self.id, Access::Write, OpKind::Store);
        self.cell.store(val, order)
    }

    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        sim_point(self.id, Access::Write, OpKind::Rmw);
        self.cell.swap(val, order)
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // ordering: Debug snapshot, any value is fine.
        let v = self.cell.load(Ordering::Relaxed);
        f.debug_tuple("AtomicBool").field(&v).finish()
    }
}
