//! # naps-sync — the workspace's sync-primitive facade
//!
//! `naps-serve` and `naps-gateway` import every synchronization
//! primitive they use (`Mutex`, `Condvar`, `mpsc`, `thread::spawn`,
//! the atomics) from this crate instead of `std`.  The facade has two
//! personalities, switched by the `naps_sim` cfg flag:
//!
//! * **Production (default): plain `std`, zero added indirection.**
//!   Every name this crate exports is a `pub use` of the corresponding
//!   `std::sync` / `std::thread` item — not a wrapper, not a newtype.
//!   `naps_sync::Mutex<T>` *is* `std::sync::Mutex<T>`; the compiled
//!   code of a production build is byte-for-byte what it would be with
//!   direct `std` imports.  This is a guarantee, not an aspiration:
//!   the re-exports below contain no code of their own.
//!
//! * **Simulation (`RUSTFLAGS="--cfg naps_sim"`): every acquire,
//!   release, load, store, wait and notify becomes a scheduling
//!   decision.**  The same names resolve to the controlled
//!   implementations in [`sim`], which park the calling thread at each
//!   visible operation and let a deterministic scheduler pick who runs
//!   next.  `naps-sim` drives that scheduler through a bounded DFS
//!   over interleavings to model-check the engine/gateway protocols.
//!
//! The [`sim`] module itself is compiled **unconditionally** so the
//! ordinary `cargo test` suite exercises the checker; `naps_sim` only
//! switches which implementation the facade names resolve to.
//!
//! The `sync_facade` analyzer rule (see `crates/analyzer`) denies
//! direct `use std::sync` / `use std::thread` in the facade crates, so
//! code cannot quietly bypass the simulator.

#![forbid(unsafe_code)]

pub mod sim;

#[cfg(not(naps_sim))]
pub use std::sync::{mpsc, Arc, Condvar, LockResult, Mutex, MutexGuard, WaitTimeoutResult};

/// Atomic types re-exported for the facade crates.
///
/// Production builds get the real `std::sync::atomic` types; under
/// `cfg(naps_sim)` the same names are the simulator's instrumented
/// cells (every access is a scheduling decision).  `Ordering` is
/// always `std`'s — the simulator explores sequentially-consistent
/// interleavings and treats the ordering argument as documentation.
#[cfg(not(naps_sim))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning and inspection for the facade crates.
///
/// Production builds re-export `std::thread`; under `cfg(naps_sim)`
/// `spawn`/`Builder` create simulator-registered threads whose every
/// visible operation is scheduled deterministically, and `sleep` is a
/// pure yield point (simulated time never blocks the checker).
#[cfg(not(naps_sim))]
pub mod thread {
    pub use std::thread::{panicking, sleep, spawn, yield_now, Builder, JoinHandle};
}

#[cfg(naps_sim)]
pub use crate::sim::sync::{mpsc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
#[cfg(naps_sim)]
pub use std::sync::{Arc, LockResult};

#[cfg(naps_sim)]
pub mod atomic {
    pub use crate::sim::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(naps_sim)]
pub mod thread {
    pub use crate::sim::thread::{panicking, sleep, spawn, yield_now, Builder, JoinHandle};
}
