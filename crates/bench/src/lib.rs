//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches (one per paper table/figure, plus BDD ablations) need small
//! trained models and pre-recorded activation patterns; building them here
//! keeps the `benches/*.rs` files declarative.

use naps_core::{BddZone, ExactZone, Monitor, MonitorBuilder, Pattern, Zone};
use naps_nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` random activation patterns of `width` bits with class
/// structure: bits are biased by `class` so per-class pattern sets cluster
/// (as trained networks produce).
pub fn clustered_patterns(n: usize, width: usize, class: u64, seed: u64) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed ^ class.wrapping_mul(0x9e37_79b9));
    let bias: Vec<f32> = (0..width)
        .map(|i| {
            if (i as u64).wrapping_mul(class + 1).is_multiple_of(3) {
                0.85
            } else {
                0.15
            }
        })
        .collect();
    (0..n)
        .map(|_| {
            let bits: Vec<bool> = bias.iter().map(|&p| rng.gen::<f32>() < p).collect();
            Pattern::from_bools(&bits)
        })
        .collect()
}

/// Builds a zone of the requested backend from patterns, enlarged to γ.
pub fn zone_from_patterns<Z: Zone>(patterns: &[Pattern], gamma: u32) -> Z {
    let width = patterns.first().map_or(0, Pattern::len);
    let mut z = Z::empty(width);
    for p in patterns {
        z.insert(p);
    }
    z.enlarge_to(gamma);
    z
}

/// A small trained classifier over 2-D blobs plus its training data —
/// enough network to exercise the full monitored path without minutes of
/// training inside a benchmark.
pub fn small_trained_model(classes: usize, seed: u64) -> (Sequential, Vec<Tensor>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = mlp(&[2, 32, classes], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in 0..classes {
        let angle = c as f32 * std::f32::consts::TAU / classes as f32;
        for k in 0..40 {
            let jitter = (k as f32 * 0.37).sin() * 0.2;
            xs.push(Tensor::from_vec(
                vec![2],
                vec![2.0 * angle.cos() + jitter, 2.0 * angle.sin() - jitter],
            ));
            ys.push(c);
        }
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.02), &mut rng);
    (net, xs, ys)
}

/// A monitor over the small trained model.
pub fn small_monitor(
    classes: usize,
    gamma: u32,
    seed: u64,
) -> (Monitor<BddZone>, Sequential, Vec<Tensor>) {
    let (mut net, xs, ys) = small_trained_model(classes, seed);
    let monitor = MonitorBuilder::new(1, gamma).build::<BddZone>(&mut net, &xs, &ys, classes);
    (monitor, net, xs)
}

/// Convenience alias so benches can name both backends uniformly.
pub type BddBackend = BddZone;
/// The explicit-set baseline backend.
pub type ExactBackend = ExactZone;

/// The serving-throughput fixture shared by `bench_throughput` and the
/// `naps-eval` `throughput` binary: a classifier wide enough that the
/// forward pass dominates per-query cost (so parallel speedup is
/// measurable rather than drowned in queueing overhead), its monitor,
/// and a mixed in/out-of-distribution probe workload.
///
/// Returns `(monitor, model, probes)`; the monitor watches the second
/// ReLU (layer 3) of a `[16, 96, 48, classes]` MLP at γ = 1.
pub fn serving_fixture(
    classes: usize,
    probes: usize,
    seed: u64,
) -> (Monitor<BddZone>, Sequential, Vec<Tensor>) {
    let in_dim = 16;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = mlp(&[in_dim, 96, 48, classes], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in 0..classes {
        let phase = c as f32 * std::f32::consts::TAU / classes as f32;
        for k in 0..40 {
            let data: Vec<f32> = (0..in_dim)
                .map(|i| {
                    let centre = (phase + i as f32 * 0.6).sin() * 2.0;
                    centre + 0.25 * ((k * in_dim + i) as f32 * 0.77).sin()
                })
                .collect();
            xs.push(Tensor::from_vec(vec![in_dim], data));
            ys.push(c);
        }
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 20,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.01), &mut rng);
    let monitor = MonitorBuilder::new(3, 1).build::<BddZone>(&mut net, &xs, &ys, classes);
    let workload: Vec<Tensor> = (0..probes)
        .map(|p| {
            let base = &xs[p % xs.len()];
            let scale = match p % 3 {
                0 => 0.0, // exact training input
                1 => 0.2, // jittered in-distribution
                _ => 3.0, // far out: exercises out-of-pattern
            };
            let data: Vec<f32> = base
                .data()
                .iter()
                .enumerate()
                .map(|(i, &v)| v + scale * ((p * 31 + i) as f32 * 1.3).sin())
                .collect();
            Tensor::from_vec(vec![in_dim], data)
        })
        .collect();
    (monitor, net, workload)
}

/// ReLU tap indices of the [`deep_serving_fixture`] model, deepest
/// (close-to-output, the paper's default single layer) first — the
/// family order multi-layer benches and evals monitor them in.
pub const DEEP_RELU_LAYERS: [usize; 3] = [5, 3, 1];

/// The multi-layer serving fixture shared by `bench_layered` and the
/// `naps-eval` `layered` binary's shape: a four-block MLP
/// (`[16, 96, 64, 48, classes]`, ReLU taps at layers 1, 3 and 5 — see
/// [`DEEP_RELU_LAYERS`]) trained on the same ring data as
/// [`serving_fixture`], its training set (to build per-layer monitors
/// from), and a mixed in/out-of-distribution probe workload.
pub fn deep_serving_fixture(
    classes: usize,
    probes: usize,
    seed: u64,
) -> (Sequential, Vec<Tensor>, Vec<usize>, Vec<Tensor>) {
    let in_dim = 16;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = mlp(&[in_dim, 96, 64, 48, classes], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in 0..classes {
        let phase = c as f32 * std::f32::consts::TAU / classes as f32;
        for k in 0..40 {
            let data: Vec<f32> = (0..in_dim)
                .map(|i| {
                    let centre = (phase + i as f32 * 0.6).sin() * 2.0;
                    centre + 0.25 * ((k * in_dim + i) as f32 * 0.77).sin()
                })
                .collect();
            xs.push(Tensor::from_vec(vec![in_dim], data));
            ys.push(c);
        }
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 20,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.01), &mut rng);
    let workload: Vec<Tensor> = (0..probes)
        .map(|p| {
            let base = &xs[p % xs.len()];
            let scale = match p % 3 {
                0 => 0.0, // exact training input
                1 => 0.2, // jittered in-distribution
                _ => 3.0, // far out: exercises out-of-pattern
            };
            let data: Vec<f32> = base
                .data()
                .iter()
                .enumerate()
                .map(|(i, &v)| v + scale * ((p * 31 + i) as f32 * 1.3).sin())
                .collect();
            Tensor::from_vec(vec![in_dim], data)
        })
        .collect();
    (net, xs, ys, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use naps_core::ActivationMonitor;

    #[test]
    fn clustered_patterns_have_requested_shape() {
        let ps = clustered_patterns(10, 24, 3, 0);
        assert_eq!(ps.len(), 10);
        assert!(ps.iter().all(|p| p.len() == 24));
    }

    #[test]
    fn zone_from_patterns_contains_seeds() {
        let ps = clustered_patterns(5, 16, 0, 1);
        let z: BddZone = zone_from_patterns(&ps, 0);
        for p in &ps {
            assert!(z.contains(p));
        }
    }

    #[test]
    fn small_monitor_builds() {
        let (monitor, mut net, xs) = small_monitor(3, 1, 2);
        let rep = monitor.check(&mut net, &xs[0]);
        assert!(rep.predicted < 3);
    }
}
