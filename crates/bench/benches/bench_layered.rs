//! Multi-layer monitoring cost: what does each **extra monitored layer**
//! add to a batched check, and what does the observation plan save over
//! the allocate-everything `forward_all` tap?
//!
//! Two claims are measured on the shared deep serving fixture
//! (`[16, 96, 64, 48, classes]`, ReLU taps at layers 5/3/1):
//!
//! * `layered/check-Nlayer` — sequential `LayeredMonitor::check_batch`
//!   with 1, 2 and 3 monitored layers.  The marginal cost of each added
//!   layer must be per-class shard lookups, **not** another forward
//!   pass: the deltas between rows are small against the forward-pass
//!   floor measured by `layered/observe`.
//! * `layered/observe` — one packed forward pass over the whole
//!   workload: the 3-layer observation plan versus `forward_all`
//!   (which materialises every intermediate activation, monitored or
//!   not).  The `naps-eval` `layered` binary records the same
//!   comparison with explicit retained-allocation numbers in
//!   `results/layered.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::{deep_serving_fixture, DEEP_RELU_LAYERS};
use naps_core::batch::{pack_batch, ObservationPlan};
use naps_core::{ActivationMonitor, BddZone, CombinePolicy, LayeredMonitor, MonitorBuilder};

const CLASSES: usize = 6;
const PROBES: usize = 192;
const CHUNK: usize = 64;
const GAMMA: u32 = 1;

fn monitors_for(
    model: &mut naps_nn::Sequential,
    xs: &[naps_tensor::Tensor],
    ys: &[usize],
    num_layers: usize,
) -> LayeredMonitor<BddZone> {
    let monitors = DEEP_RELU_LAYERS[..num_layers]
        .iter()
        .map(|&layer| MonitorBuilder::new(layer, GAMMA).build::<BddZone>(model, xs, ys, CLASSES))
        .collect();
    LayeredMonitor::new(monitors, CombinePolicy::Any)
}

fn bench_marginal_layers(c: &mut Criterion) {
    let (mut model, xs, ys, workload) = deep_serving_fixture(CLASSES, PROBES, 42);
    let mut group = c.benchmark_group("layered/check");
    for num_layers in 1..=DEEP_RELU_LAYERS.len() {
        let layered = monitors_for(&mut model, &xs, &ys, num_layers);
        group.bench_with_input(
            BenchmarkId::from_parameter(num_layers),
            &num_layers,
            |b, _| {
                b.iter(|| {
                    let mut warned = 0usize;
                    for chunk in workload.chunks(CHUNK) {
                        warned += layered
                            .check_batch(&mut model, chunk)
                            .iter()
                            .filter(|r| r.combined == naps_core::Verdict::OutOfPattern)
                            .count();
                    }
                    warned
                });
            },
        );
    }
    group.finish();
}

fn bench_observation_plan(c: &mut Criterion) {
    let (mut model, _, _, workload) = deep_serving_fixture(CLASSES, PROBES, 42);
    let batch = pack_batch(&workload);
    let plan = ObservationPlan::new(DEEP_RELU_LAYERS.to_vec());
    let mut group = c.benchmark_group("layered/observe");
    group.bench_function("plan-3layer", |b| {
        b.iter(|| model.forward_observe_plan(&batch, &plan, false))
    });
    group.bench_function("forward-all", |b| {
        b.iter(|| model.forward_all(&batch, false))
    });
    group.finish();
}

criterion_group!(benches, bench_marginal_layers, bench_observation_plan);
criterion_main!(benches);
