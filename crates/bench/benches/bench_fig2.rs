//! Figure 2 benchmark: the cost of exploring the abstraction spectrum —
//! cumulative dilation to growing γ and the saturation behaviour of the
//! zone (pattern counts approaching the full space).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::{clustered_patterns, zone_from_patterns};
use naps_core::{BddZone, Zone};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// Full sweep cost: dilate a 40-bit zone from γ = 0 to the target radius.
/// Dilation cost grows roughly an order of magnitude per radius step
/// (γ = 4 already takes ~1.5 min on this fixture), so the sweep stops at
/// γ = 3 to keep the bench suite tractable.
fn sweep_to_gamma(c: &mut Criterion) {
    let seeds = clustered_patterns(300, 40, 1, 21);
    let mut group = c.benchmark_group("fig2_sweep_to_gamma");
    for gamma in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &g| {
            b.iter_batched(
                || zone_from_patterns::<BddZone>(&seeds, 0),
                |mut z| {
                    z.enlarge_to(g);
                    black_box(z.pattern_count())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Membership query cost as the zone saturates (γ grows): the paper's
/// linearity claim implies this stays flat-or-falling (smaller diagrams).
fn query_at_gamma(c: &mut Criterion) {
    let seeds = clustered_patterns(300, 40, 1, 22);
    let probes = clustered_patterns(64, 40, 4, 23);
    let mut group = c.benchmark_group("fig2_query_at_gamma");
    for gamma in [0u32, 1, 2, 3] {
        let zone: BddZone = zone_from_patterns(&seeds, gamma);
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(zone.contains(&probes[i]))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = sweep_to_gamma, query_at_gamma
}
criterion_main!(benches);
