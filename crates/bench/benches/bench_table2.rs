//! Table II benchmark: cost of the monitoring machinery itself —
//! building the monitor (Algorithm 1), enlarging it per γ, and the
//! per-decision runtime overhead of consulting it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::{clustered_patterns, small_monitor, small_trained_model, zone_from_patterns};
use naps_core::ActivationMonitor;
use naps_core::{BddZone, ExactZone, MonitorBuilder, Zone};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// Algorithm 1 end-to-end (replay training set + build zones) per backend.
fn monitor_build(c: &mut Criterion) {
    let (mut net, xs, ys) = small_trained_model(4, 0);
    let mut group = c.benchmark_group("monitor_build");
    group.bench_function("bdd", |b| {
        b.iter(|| black_box(MonitorBuilder::new(1, 1).build::<BddZone>(&mut net, &xs, &ys, 4)));
    });
    group.bench_function("exact", |b| {
        b.iter(|| black_box(MonitorBuilder::new(1, 1).build::<ExactZone>(&mut net, &xs, &ys, 4)));
    });
    group.finish();
}

/// Zone enlargement cost per γ step at paper-like widths (40 = MNIST fc
/// layer, 21 = the selected quarter of GTSRB's 84).
fn enlarge_per_gamma(c: &mut Criterion) {
    let mut group = c.benchmark_group("zone_enlarge_to_gamma");
    for gamma in 1u32..=3 {
        let seeds = clustered_patterns(500, 40, 2, 5);
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &g| {
            b.iter_batched(
                || zone_from_patterns::<BddZone>(&seeds, 0),
                |mut z| {
                    z.enlarge_to(g);
                    black_box(z.gamma())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Per-decision cost: bare network prediction vs monitored prediction.
fn monitored_decision_overhead(c: &mut Criterion) {
    let (monitor, mut net, xs) = small_monitor(4, 1, 9);
    let mut group = c.benchmark_group("decision");
    group.bench_function("predict_only", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % xs.len();
            let batch = naps_tensor::Tensor::from_vec(vec![1, 2], xs[i].data().to_vec());
            black_box(net.predict(&batch))
        });
    });
    group.bench_function("predict_plus_monitor", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % xs.len();
            black_box(monitor.check(&mut net, &xs[i]))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = monitor_build, enlarge_per_gamma, monitored_decision_overhead
}
criterion_main!(benches);
