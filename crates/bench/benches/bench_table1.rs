//! Table I benchmark: the cost of producing the paper's networks and
//! accuracies — dataset rendering throughput, inference latency of both
//! architectures, and one training step.

use criterion::{criterion_group, criterion_main, Criterion};
use naps_data::{digits, signs};
use naps_nn::{gtsrb_net, mnist_net, softmax_cross_entropy, Adam, Optimizer};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn dataset_rendering(c: &mut Criterion) {
    c.bench_function("render_digit_28x28", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| black_box(digits::render(7, digits::DigitStyle::clean(), &mut rng)));
    });
    c.bench_function("render_sign_32x32_rgb", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| black_box(signs::render(14, signs::SignStyle::clean(), &mut rng)));
    });
}

fn inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net1 = mnist_net(&mut rng);
    let x1 = Tensor::zeros(vec![1, 28 * 28]);
    c.bench_function("mnist_net_forward_1", |b| {
        b.iter(|| black_box(net1.forward(&x1, false)));
    });
    let mut net2 = gtsrb_net(&mut rng);
    let x2 = Tensor::zeros(vec![1, 3 * 32 * 32]);
    c.bench_function("gtsrb_net_forward_1", |b| {
        b.iter(|| black_box(net2.forward(&x2, false)));
    });
}

fn training_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = mnist_net(&mut rng);
    let batch = Tensor::randn(vec![8, 28 * 28], 0.5, &mut rng);
    let labels = [0usize, 1, 2, 3, 4, 5, 6, 7];
    let mut opt = Adam::new(1e-3);
    c.bench_function("mnist_net_train_step_b8", |b| {
        b.iter(|| {
            let logits = net.forward(&batch, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.zero_grad();
            let _ = net.backward(&grad);
            opt.step(&mut net.params_mut());
        });
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = dataset_rendering, inference, training_step
}
criterion_main!(benches);
