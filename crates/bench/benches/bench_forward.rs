//! The allocation-free prepared forward pass: what pre-packed weights
//! and reused scratch buy over the allocating per-call path.
//!
//! Three groups on the shared serving fixture, equivalence asserted
//! before anything is timed (a fast wrong path must not look like a
//! win):
//!
//! * `forward/gemm` — packed [`PackedWeights`] GEMM vs. the per-call
//!   `matmul` on the fixture's layer shapes (the same blocked kernel
//!   underneath; the delta is allocation + packing only).
//! * `forward/observe` — the full serving front half per micro-batch
//!   size: [`FrozenLayeredMonitor::observe_batch_prepared`] with a
//!   warmed [`PreparedObserver`] vs. the allocating `observe_batch`.
//! * `forward/layers` — marginal prepared-forward cost as model depth
//!   grows, isolating the per-layer cost of the ping-pong scratch.
//!
//! `results/forward.json` (the `naps-eval` `forward` binary) records
//! the same comparison with explicit QPS and an allocation census, and
//! hard-gates zero steady-state allocations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::serving_fixture;
use naps_core::prepared::PreparedObserver;
use naps_nn::{Dense, Layer, ModelSnapshot, Relu, Sequential};
use naps_serve::{FrozenLayeredMonitor, FrozenMonitor};
use naps_tensor::{PackedWeights, Tensor};

const CLASSES: usize = 6;
const PROBES: usize = 256;
const BATCHES: [usize; 3] = [1, 16, 64];

/// Packed vs. per-call GEMM on the serving fixture's layer shapes.
fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward/gemm");
    for &(m, k, n) in &[(16usize, 16usize, 96usize), (16, 96, 48), (16, 48, 6)] {
        let x = Tensor::from_vec(
            vec![m, k],
            (0..m * k).map(|i| (i as f32 * 0.13).sin()).collect(),
        );
        let w = Tensor::from_vec(
            vec![k, n],
            (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect(),
        );
        let packed = PackedWeights::pack(&w);
        let mut out = Tensor::default();
        // The packed path must be bit-identical before it is timed.
        packed.matmul_into(&x, &mut out);
        assert_eq!(out, x.matmul(&w), "packed GEMM diverged at {m}x{k}x{n}");
        group.bench_with_input(
            BenchmarkId::new("per-call", format!("{m}x{k}x{n}")),
            &x,
            |b, x| b.iter(|| x.matmul(&w)),
        );
        group.bench_with_input(
            BenchmarkId::new("packed-into", format!("{m}x{k}x{n}")),
            &x,
            |b, x| b.iter(|| packed.matmul_into(x, &mut out)),
        );
    }
    group.finish();
}

/// The serving front half: allocating observe vs. warmed prepared
/// observer, per micro-batch size.
fn bench_observe(c: &mut Criterion) {
    let (monitor, mut model, probes) = serving_fixture(CLASSES, PROBES, 42);
    let frozen = FrozenLayeredMonitor::from_single(FrozenMonitor::freeze(&monitor));
    let snapshot = ModelSnapshot::capture(&model).expect("serving fixture is an MLP");
    let prepared = snapshot.prepare(frozen.plan());
    let mut observer = PreparedObserver::new();
    // Equivalence before timing, across every batch size used below.
    for batch in BATCHES {
        for chunk in probes.chunks(batch) {
            let want = frozen.observe_batch(&mut model, chunk);
            let got = frozen.observe_batch_prepared(&prepared, &mut observer, chunk);
            assert_eq!(got, &want[..], "prepared observe diverged at batch {batch}");
        }
    }
    let mut group = c.benchmark_group("forward/observe");
    for batch in BATCHES {
        group.bench_with_input(
            BenchmarkId::new("fresh-alloc", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut served = 0usize;
                    for chunk in probes.chunks(batch) {
                        served += frozen.observe_batch(&mut model, chunk).len();
                    }
                    served
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scratch-reuse", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut served = 0usize;
                    for chunk in probes.chunks(batch) {
                        served += frozen
                            .observe_batch_prepared(&prepared, &mut observer, chunk)
                            .len();
                    }
                    served
                });
            },
        );
    }
    group.finish();
}

/// Marginal per-layer cost of the prepared forward: deterministic MLPs
/// of growing depth, one ping-pong step per extra Dense+ReLU block.
fn bench_layers(c: &mut Criterion) {
    let dense = |inw: usize, outw: usize, seed: f32| {
        Dense::from_parts(
            Tensor::from_vec(
                vec![inw, outw],
                (0..inw * outw)
                    .map(|i| ((i as f32 + seed) * 0.37).sin())
                    .collect(),
            ),
            Tensor::from_vec(
                vec![outw],
                (0..outw)
                    .map(|i| ((i as f32 + seed) * 0.19).cos())
                    .collect(),
            ),
        )
    };
    let batch = Tensor::from_vec(
        vec![16, 32],
        (0..16 * 32).map(|i| (i as f32 * 0.11).sin()).collect(),
    );
    let mut group = c.benchmark_group("forward/layers");
    for blocks in [1usize, 2, 4, 8] {
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        for d in 0..blocks {
            layers.push(Box::new(dense(32, 32, d as f32)));
            layers.push(Box::new(Relu::new()));
        }
        layers.push(Box::new(dense(32, CLASSES, 99.0)));
        let model = Sequential::new(layers);
        let snapshot = ModelSnapshot::capture(&model).expect("MLP captures");
        // Observe the last ReLU, as the paper's close-to-output monitor does.
        let plan = naps_core::batch::ObservationPlan::new(vec![2 * blocks - 1]);
        let prepared = snapshot.prepare(&plan);
        let mut scratch = naps_core::batch::ForwardScratch::new();
        let mut observed = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            b.iter(|| {
                prepared.forward_observe_into(&batch, &mut scratch, &mut observed);
                scratch.logits().len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_observe, bench_layers);
criterion_main!(benches);
