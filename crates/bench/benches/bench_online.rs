//! Live-update path latencies: enrichment, re-freeze, hot swap into a
//! running engine, and snapshot persistence.
//!
//! These are the costs the online-adaptation loop pays per operator
//! confirmation cycle (`results/online.json`, written by the `naps-eval`
//! `online_adaptation` binary, records the end-to-end trajectory; this
//! bench isolates each step).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use naps_bench::{clustered_patterns, serving_fixture, small_monitor};
use naps_serve::{EngineConfig, FrozenMonitor, MonitorEngine};

const CLASSES: usize = 6;

/// `Monitor::enrich` of a confirmed-pattern batch into built, enlarged
/// zones (the post-enlargement insert path), including the pre-publish
/// `compact_dirty`.
fn bench_enrich(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/enrich");
    for batch in [1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_batched(
                || {
                    let (monitor, _, _) = small_monitor(CLASSES, 2, 7);
                    // Confirmed patterns unlikely to be seeds already.
                    let fresh = clustered_patterns(batch, 32, 3, 0xfeed);
                    (monitor, fresh)
                },
                |(mut monitor, fresh)| {
                    let n = monitor.enrich(0, &fresh).expect("class 0 is monitored");
                    monitor.compact_dirty();
                    n
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Re-freezing an updated monitor into a sharded snapshot.
fn bench_freeze(c: &mut Criterion) {
    let (monitor, _, _) = small_monitor(CLASSES, 2, 7);
    c.bench_function("online/freeze_4_shards", |b| {
        b.iter(|| FrozenMonitor::shard_by_class(&monitor, 4));
    });
}

/// The hot swap itself: publishing a snapshot into a running engine
/// (workers pick it up at their next micro-batch boundary).
fn bench_publish(c: &mut Criterion) {
    let (monitor, model, _) = serving_fixture(CLASSES, 8, 42);
    let engine = MonitorEngine::new(
        &monitor,
        &model,
        EngineConfig {
            workers: 2,
            max_batch: 16,
            queue_capacity: 64,
        },
    )
    .expect("serving fixture is an MLP");
    let snapshot = FrozenMonitor::shard_by_class(&monitor, 2);
    c.bench_function("online/publish_hot_swap", |b| {
        b.iter(|| engine.publish(snapshot.clone()).expect("compatible"));
    });
    engine.shutdown();
}

/// Persistence round trip of a frozen monitor (warm-restart cost).
fn bench_persist(c: &mut Criterion) {
    let (monitor, _, _) = small_monitor(CLASSES, 2, 7);
    let frozen = FrozenMonitor::freeze(&monitor);
    let dir = std::env::temp_dir().join("naps_bench_online");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("monitor.json");
    c.bench_function("online/save_load_roundtrip", |b| {
        b.iter(|| {
            frozen.save(&path).expect("save");
            FrozenMonitor::load(&path).expect("load")
        });
    });
    let _ = std::fs::remove_file(&path);
}

criterion_group!(
    benches,
    bench_enrich,
    bench_freeze,
    bench_publish,
    bench_persist
);
criterion_main!(benches);
