//! Query-cost ablation for the Section V item (2) numeric refinements:
//! the binary BDD monitor answers membership in O(#neurons), the interval
//! box in O(#neurons), and the DBM in O(#neurons²).  This bench makes the
//! asymptotics concrete so the refinement experiment's cost claim is
//! measured, not asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::{clustered_patterns, zone_from_patterns, BddBackend};
use naps_core::{DbmZone, IntervalZone, Zone};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

/// Deterministic pseudo-activation vectors of the given width.
fn activations(n: usize, width: usize, phase: f32) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..width)
                .map(|j| ((i * width + j) as f32 * 0.137 + phase).sin() * 2.0)
                .collect()
        })
        .collect()
}

/// Membership query latency of each detector as the monitored width grows.
fn query_vs_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement_query_vs_width");
    for width in [16usize, 40, 84, 128] {
        // Binary monitor.
        let seeds = clustered_patterns(150, width, 1, 7);
        let bdd: BddBackend = zone_from_patterns(&seeds, 1);
        let probes = clustered_patterns(64, width, 2, 99);
        group.bench_with_input(BenchmarkId::new("bdd", width), &width, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(bdd.contains(&probes[i]))
            });
        });

        // Numeric envelopes over the same width.
        let train = activations(150, width, 0.0);
        let queries = activations(64, width, 1.0);
        let mut boxz = IntervalZone::empty(width);
        let mut dbm = DbmZone::empty(width);
        for v in &train {
            boxz.insert(v);
            dbm.insert(v);
        }
        group.bench_with_input(BenchmarkId::new("box", width), &width, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(boxz.contains(&queries[i], 0.5))
            });
        });
        group.bench_with_input(BenchmarkId::new("dbm", width), &width, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(dbm.contains(&queries[i], 0.5))
            });
        });
    }
    group.finish();
}

/// Envelope construction cost (one insert) vs width — O(d) for the box,
/// O(d²) for the DBM.
fn insert_vs_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement_insert_vs_width");
    for width in [16usize, 40, 84] {
        let samples = activations(64, width, 0.3);
        group.bench_with_input(BenchmarkId::new("box", width), &width, |b, _| {
            let mut zone = IntervalZone::empty(width);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % samples.len();
                zone.insert(&samples[i]);
                black_box(zone.sample_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("dbm", width), &width, |b, _| {
            let mut zone = DbmZone::empty(width);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % samples.len();
                zone.insert(&samples[i]);
                black_box(zone.sample_count())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = query_vs_width, insert_vs_width
}
criterion_main!(benches);
