//! BDD ablation benchmarks backing the paper's complexity claims:
//!
//! * the membership query is linear in the number of monitored neurons
//!   (sweep the pattern width);
//! * BDD queries are insensitive to the number of stored patterns, while
//!   the explicit-set baseline degrades with the seed count;
//! * γ-dilation cost (existential quantification) per radius step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::{clustered_patterns, zone_from_patterns, BddBackend, ExactBackend};
use naps_core::Zone;
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

/// Query latency vs pattern width (the "linear in neurons" claim).
fn query_vs_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_query_vs_width");
    for width in [16usize, 32, 64, 128, 200] {
        let seeds = clustered_patterns(200, width, 1, 7);
        let zone: BddBackend = zone_from_patterns(&seeds, 1);
        let probes = clustered_patterns(64, width, 2, 99);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(zone.contains(&probes[i]))
            });
        });
    }
    group.finish();
}

/// BDD vs explicit set: query latency as the seed count grows.
fn query_vs_seed_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_vs_seed_count");
    for n in [100usize, 400, 1600] {
        let seeds = clustered_patterns(n, 40, 1, 3);
        let probes = clustered_patterns(64, 40, 2, 55);
        let bdd: BddBackend = zone_from_patterns(&seeds, 1);
        let exact: ExactBackend = zone_from_patterns(&seeds, 1);
        group.bench_with_input(BenchmarkId::new("bdd", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(bdd.contains(&probes[i]))
            });
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(exact.contains(&probes[i]))
            });
        });
    }
    group.finish();
}

/// Cost of one γ-dilation step (Algorithm 1 line 12) vs width.
fn dilation_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_dilate_once");
    group.sample_size(10);
    for width in [24usize, 40, 84] {
        let seeds = clustered_patterns(300, width, 1, 11);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter_batched(
                || zone_from_patterns::<BddBackend>(&seeds, 0),
                |mut z| {
                    z.enlarge_to(1);
                    black_box(z.gamma())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Distance-to-seeds query (the refinement beyond the paper's binary
/// verdict).
fn distance_query(c: &mut Criterion) {
    let seeds = clustered_patterns(400, 40, 1, 13);
    let zone: BddBackend = zone_from_patterns(&seeds, 0);
    let probes = clustered_patterns(64, 40, 3, 77);
    c.bench_function("bdd_distance_to_seeds", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(zone.distance_to_seeds(&probes[i]))
        });
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = query_vs_width, query_vs_seed_count, dilation_step, distance_query
}
criterion_main!(benches);
