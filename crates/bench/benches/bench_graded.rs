//! Benchmarks for the graded-verdict distance machinery: the
//! budget-bounded early-exit DP against the unbounded full-array sweep,
//! on both the manager and the lock-free snapshot path, plus the
//! end-to-end graded pattern judgement.
//!
//! The bounded DP's advantage grows with the diagram size and shrinks
//! with the budget: in-zone probes exit after one `eval` walk, and
//! far-from-everything probes exhaust the budget near the root instead
//! of sweeping every node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::{clustered_patterns, zone_from_patterns};
use naps_core::{BddZone, GradedQuery, Monitor, NeuronSelection, Pattern, Zone};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

const WIDTH: usize = 48;
const GAMMA: u32 = 2;

/// A dilated zone plus three probe mixes: in-zone, near (a few flips
/// out) and far (another cluster entirely).
fn fixture() -> (BddZone, Vec<Pattern>, Vec<Pattern>, Vec<Pattern>) {
    let seeds = clustered_patterns(300, WIDTH, 1, 7);
    let zone: BddZone = zone_from_patterns(&seeds, GAMMA);
    let inside: Vec<Pattern> = seeds.iter().take(64).cloned().collect();
    let near: Vec<Pattern> = seeds
        .iter()
        .take(64)
        .map(|p| {
            let mut bits = p.to_bools();
            for b in bits.iter_mut().take(GAMMA as usize + 2) {
                *b = !*b;
            }
            Pattern::from_bools(&bits)
        })
        .collect();
    let far = clustered_patterns(64, WIDTH, 6, 99);
    (zone, inside, near, far)
}

/// Snapshot path: bounded DP vs unbounded sweep per probe mix.
fn snapshot_bounded_vs_unbounded(c: &mut Criterion) {
    let (zone, inside, near, far) = fixture();
    let snap = zone.zone_snapshot();
    let mut group = c.benchmark_group("snapshot_zone_distance");
    for (mix, probes) in [("inside", &inside), ("near", &near), ("far", &far)] {
        let bools: Vec<Vec<bool>> = probes.iter().map(Pattern::to_bools).collect();
        group.bench_with_input(BenchmarkId::new("unbounded", mix), &mix, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % bools.len();
                black_box(snap.min_hamming_distance(&bools[i]))
            });
        });
        for budget in [GAMMA, GAMMA + 2] {
            group.bench_with_input(
                BenchmarkId::new(format!("bounded_b{budget}"), mix),
                &mix,
                |b, _| {
                    let mut i = 0usize;
                    b.iter(|| {
                        i = (i + 1) % bools.len();
                        black_box(snap.min_hamming_distance_within(&bools[i], budget))
                    });
                },
            );
        }
    }
    group.finish();
}

/// Manager path: bounded recursion vs unbounded memoised recursion.
fn manager_bounded_vs_unbounded(c: &mut Criterion) {
    let (zone, _, near, far) = fixture();
    let mut group = c.benchmark_group("manager_zone_distance");
    for (mix, probes) in [("near", &near), ("far", &far)] {
        group.bench_with_input(BenchmarkId::new("unbounded", mix), &mix, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(zone.distance_to_zone(&probes[i]))
            });
        });
        group.bench_with_input(BenchmarkId::new("bounded", mix), &mix, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(zone.distance_to_zone_within(&probes[i], GAMMA + 2))
            });
        });
    }
    group.finish();
}

/// End-to-end graded judgement of an already-extracted pattern: binary
/// verdict vs graded verdict (distance + nearest-class ranking over all
/// classes) at two budgets.
fn graded_pattern_judgement(c: &mut Criterion) {
    let classes = 6usize;
    let zones: Vec<Option<BddZone>> = (0..classes)
        .map(|cls| {
            let seeds = clustered_patterns(150, WIDTH, cls as u64, 17);
            Some(zone_from_patterns(&seeds, GAMMA))
        })
        .collect();
    let monitor = Monitor::from_zones(zones, 1, NeuronSelection::all(WIDTH), GAMMA);
    let probes = clustered_patterns(64, WIDTH, 2, 31);
    let mut group = c.benchmark_group("graded_pattern");
    group.bench_function("binary_check_pattern", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(monitor.check_pattern(0, &probes[i]))
        });
    });
    for budget in [GAMMA, GAMMA + 2] {
        group.bench_with_input(
            BenchmarkId::new("check_graded_pattern", budget),
            &budget,
            |b, &budget| {
                let query = GradedQuery::new(budget, 3);
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % probes.len();
                    black_box(monitor.check_graded_pattern(0, &probes[i], query))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = snapshot_bounded_vs_unbounded, manager_bounded_vs_unbounded, graded_pattern_judgement
}
criterion_main!(benches);
