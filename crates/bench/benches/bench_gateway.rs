//! Gateway overhead benchmarks: what the wire boundary costs on top of
//! in-process serving.
//!
//! * round-trip latency of one `check` over loopback TCP vs the
//!   in-process `MonitorEngine::check` call (codec + two socket hops);
//! * pipelined wire throughput (a window of in-flight requests on one
//!   connection) vs the in-process batch path;
//! * raw codec cost: encoding a request and decoding the response
//!   without any socket.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_gateway::{
    decode_response, encode_request, Gateway, GatewayClient, GatewayConfig, Request, RequestKind,
    Response,
};
use naps_serve::{EngineConfig, MonitorEngine};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn serving(workers: usize) -> (Arc<MonitorEngine>, Vec<naps_tensor::Tensor>) {
    let (monitor, net, probes) = naps_bench::serving_fixture(4, 64, 11);
    let engine = MonitorEngine::new(
        &monitor,
        &net,
        EngineConfig {
            workers,
            max_batch: 8,
            queue_capacity: 1024,
        },
    )
    .expect("serving fixture is an MLP");
    (Arc::new(engine), probes)
}

/// One synchronous `check`: in-process call vs loopback round trip.
fn check_roundtrip(c: &mut Criterion) {
    let (engine, probes) = serving(2);
    let gateway = Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default())
        .expect("loopback bind");
    let mut client = GatewayClient::connect(gateway.local_addr()).expect("connect");

    let mut group = c.benchmark_group("gateway_check_roundtrip");
    group.bench_function("in_process", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(engine.check(&probes[i]).expect("engine up"))
        });
    });
    group.bench_function("loopback_tcp", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(client.check(&probes[i]).expect("served"))
        });
    });
    group.finish();
    drop(client);
    gateway.shutdown();
}

/// Wire throughput with a pipelined in-flight window vs in-process
/// batch checking.
fn pipelined_throughput(c: &mut Criterion) {
    let (engine, probes) = serving(2);
    let gateway = Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default())
        .expect("loopback bind");

    let mut group = c.benchmark_group("gateway_pipelined");
    group.bench_function("in_process_batch", |b| {
        b.iter(|| black_box(engine.check_batch(&probes).expect("engine up")));
    });
    for window in [4usize, 32] {
        let mut client = GatewayClient::connect(gateway.local_addr()).expect("connect");
        group.bench_with_input(BenchmarkId::new("wire_window", window), &window, |b, &w| {
            b.iter(|| {
                let mut pending = 0usize;
                for x in &probes {
                    client.send(RequestKind::Check, None, x).expect("send");
                    pending += 1;
                    if pending == w {
                        for _ in 0..pending {
                            black_box(client.recv().expect("served"));
                        }
                        pending = 0;
                    }
                }
                for _ in 0..pending {
                    black_box(client.recv().expect("served"));
                }
            });
        });
    }
    group.finish();
    gateway.shutdown();
}

/// Codec-only cost: request encode + response decode, no socket.
fn codec(c: &mut Criterion) {
    let (engine, probes) = serving(1);
    let report = engine.check(&probes[0]).expect("engine up");
    let response_bytes =
        naps_gateway::encode_response(7, &Response::Single(report)).expect("verdict encodes");
    let request = Request {
        id: 7,
        kind: RequestKind::Check,
        query: None,
        input: probes[0].data().to_vec(),
    };

    let mut group = c.benchmark_group("gateway_codec");
    group.bench_function("encode_request_16f", |b| {
        b.iter(|| black_box(encode_request(black_box(&request)).expect("encodes")));
    });
    group.bench_function("decode_response_single", |b| {
        b.iter(|| black_box(decode_response(black_box(&response_bytes)).expect("decodes")));
    });
    group.finish();
    engine.stop(); // Arc drop joins the workers
}

criterion_group! {
    name = benches;
    config = configured();
    targets = check_roundtrip, pipelined_throughput, codec
}
criterion_main!(benches);
