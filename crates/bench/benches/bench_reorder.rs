//! Variable-ordering ablation: how much do static ordering heuristics and
//! greedy sifting shrink a comfort-zone BDD, and what do they cost?
//!
//! Reordering never changes monitor semantics or the O(#neurons) query
//! walk; the payoff is the deployed diagram's node count (memory) and the
//! offline cost of finding the order.  Three orders are compared on
//! clustered per-class pattern sets:
//!
//! * `identity` — the neuron-index order the monitor is built with;
//! * `bias` — [`naps_core::order_by_bias`], most biased neurons first;
//! * `sifted` — [`naps_bdd::Bdd::sift`] greedy adjacent-swap search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::{clustered_patterns, zone_from_patterns, BddBackend};
use naps_core::order_by_bias;
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

/// Cost of measuring a zone under the bias-heuristic permutation
/// (one full rebuild), as the pattern width grows.
fn permute_cost_vs_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder_permute_cost_vs_width");
    for width in [24usize, 40, 64] {
        let seeds = clustered_patterns(150, width, 1, 11);
        let zone: BddBackend = zone_from_patterns(&seeds, 1);
        let perm = order_by_bias(&seeds);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| black_box(zone.node_count_under(&perm)));
        });
    }
    group.finish();
}

/// Cost of one greedy sifting search (the offline monitor-preparation
/// step), small widths only — each swap trial is a rebuild.
fn sift_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder_sift_cost");
    for width in [16usize, 24] {
        let seeds = clustered_patterns(80, width, 2, 23);
        let zone: BddBackend = zone_from_patterns(&seeds, 1);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| black_box(zone.sifted_node_count(1)));
        });
    }
    group.finish();
}

/// Not a timing benchmark: prints the node counts the ablation is about,
/// so `cargo bench` output records identity vs bias vs sifted sizes.
fn report_node_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder_node_counts");
    for (label, class, gamma) in [("g0", 1u64, 0u32), ("g1", 1, 1), ("mixed", 3, 1)] {
        let seeds = clustered_patterns(200, 40, class, 31);
        let zone: BddBackend = zone_from_patterns(&seeds, gamma);
        let identity = zone.node_count();
        let bias = zone.node_count_under(&order_by_bias(&seeds));
        let (sifted, _) = zone.sifted_node_count(1);
        println!("[reorder_node_counts/{label}] identity={identity} bias={bias} sifted={sifted}");
        // Keep Criterion happy with a trivial measurement so the printout
        // lands in the bench log.
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(identity.min(bias).min(sifted)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = permute_cost_vs_width, sift_cost, report_node_counts
}
criterion_main!(benches);
