//! Serving throughput: sequential `check_batch` vs. the `naps-serve`
//! `MonitorEngine` across worker counts (1/2/4/8) and micro-batch sizes
//! (1/16/128) on the shared serving fixture.
//!
//! The single-thread sequential rows are the baseline the ROADMAP's
//! monitoring-latency regression checks compare against; the engine rows
//! quantify what the work-stealing pool buys on the current hardware
//! (`results/throughput.json`, written by the `naps-eval` `throughput`
//! binary, records the same matrix with explicit QPS numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::serving_fixture;
use naps_core::{ActivationMonitor, MonitorReport, Pattern, Verdict};
use naps_serve::{EngineConfig, FrozenMonitor, MonitorEngine};

const CLASSES: usize = 6;
const PROBES: usize = 256;
const BATCHES: [usize; 3] = [1, 16, 128];
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn bench_sequential(c: &mut Criterion) {
    let (monitor, mut model, probes) = serving_fixture(CLASSES, PROBES, 42);
    let mut group = c.benchmark_group("throughput/sequential");
    for batch in BATCHES {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let mut served = 0usize;
                for chunk in probes.chunks(batch) {
                    served += monitor.check_batch(&mut model, chunk).len();
                }
                served
            });
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let (monitor, model, probes) = serving_fixture(CLASSES, PROBES, 42);
    for workers in WORKERS {
        let mut group = c.benchmark_group(format!("throughput/engine-{workers}w"));
        for batch in BATCHES {
            let engine = MonitorEngine::new(
                &monitor,
                &model,
                EngineConfig {
                    workers,
                    max_batch: batch,
                    queue_capacity: 2 * PROBES,
                },
            )
            .expect("serving fixture is an MLP");
            group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
                b.iter(|| engine.check_batch(&probes).expect("engine is up").len());
            });
            engine.shutdown();
        }
        group.finish();
    }
}

/// Judge-only (no forward pass): the compiled frozen judging path —
/// class-grouped batches through the bit-sliced evaluators — against the
/// walked snapshot oracle on the same pre-observed pairs.  This isolates
/// what PR 6's compiled evaluators buy; `results/compiled.json` (the
/// `naps-eval` `compiled` binary) records the same comparison with
/// explicit speedups and hard-gates divergence.
fn bench_judge(c: &mut Criterion) {
    let (monitor, mut model, probes) = serving_fixture(CLASSES, PROBES, 42);
    let frozen = FrozenMonitor::freeze(&monitor);
    let pairs: Vec<(usize, Pattern)> = frozen.observe_batch(&mut model, &probes);
    let pair_refs: Vec<(usize, &Pattern)> = pairs.iter().map(|(p, pat)| (*p, pat)).collect();
    let walk_one = |&(p, pat): &(usize, &Pattern)| -> MonitorReport {
        match frozen.zone(p) {
            None => MonitorReport {
                predicted: p,
                verdict: Verdict::Unmonitored,
                distance_to_seeds: None,
            },
            Some(z) => MonitorReport {
                predicted: p,
                verdict: if z.contains_walked(pat) {
                    Verdict::InPattern
                } else {
                    Verdict::OutOfPattern
                },
                distance_to_seeds: z.distance_to_seeds_walked(pat),
            },
        }
    };
    // The two paths must agree before either is worth timing.
    assert_eq!(
        frozen.report_batch(&pair_refs),
        pair_refs.iter().map(walk_one).collect::<Vec<_>>(),
        "compiled judging diverged from the walked snapshot oracle"
    );
    let mut group = c.benchmark_group("throughput/judge");
    group.bench_function("walked", |b| {
        b.iter(|| pair_refs.iter().map(walk_one).collect::<Vec<_>>());
    });
    group.bench_function("compiled", |b| {
        b.iter(|| frozen.report_batch(&pair_refs));
    });
    group.finish();
}

criterion_group!(benches, bench_sequential, bench_engine, bench_judge);
criterion_main!(benches);
