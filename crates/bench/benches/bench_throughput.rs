//! Serving throughput: sequential `check_batch` vs. the `naps-serve`
//! `MonitorEngine` across worker counts (1/2/4/8) and micro-batch sizes
//! (1/16/128) on the shared serving fixture.
//!
//! The single-thread sequential rows are the baseline the ROADMAP's
//! monitoring-latency regression checks compare against; the engine rows
//! quantify what the work-stealing pool buys on the current hardware
//! (`results/throughput.json`, written by the `naps-eval` `throughput`
//! binary, records the same matrix with explicit QPS numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naps_bench::serving_fixture;
use naps_core::ActivationMonitor;
use naps_serve::{EngineConfig, MonitorEngine};

const CLASSES: usize = 6;
const PROBES: usize = 256;
const BATCHES: [usize; 3] = [1, 16, 128];
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn bench_sequential(c: &mut Criterion) {
    let (monitor, mut model, probes) = serving_fixture(CLASSES, PROBES, 42);
    let mut group = c.benchmark_group("throughput/sequential");
    for batch in BATCHES {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let mut served = 0usize;
                for chunk in probes.chunks(batch) {
                    served += monitor.check_batch(&mut model, chunk).len();
                }
                served
            });
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let (monitor, model, probes) = serving_fixture(CLASSES, PROBES, 42);
    for workers in WORKERS {
        let mut group = c.benchmark_group(format!("throughput/engine-{workers}w"));
        for batch in BATCHES {
            let engine = MonitorEngine::new(
                &monitor,
                &model,
                EngineConfig {
                    workers,
                    max_batch: batch,
                    queue_capacity: 2 * PROBES,
                },
            )
            .expect("serving fixture is an MLP");
            group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
                b.iter(|| engine.check_batch(&probes).expect("engine is up").len());
            });
            engine.shutdown();
        }
        group.finish();
    }
}

criterion_group!(benches, bench_sequential, bench_engine);
criterion_main!(benches);
