//! Case-study benchmark (Figure 3): end-to-end latency of one monitored
//! pipeline step — scenario perception, feature assembly, selection
//! network forward pass and monitor query — versus the unmonitored
//! pipeline, under nominal and shifted conditions.

use criterion::{criterion_group, criterion_main, Criterion};
use naps_frontcar::{Conditions, FrontCarPipeline, PipelineConfig, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn pipeline_fixture() -> FrontCarPipeline {
    let mut rng = StdRng::seed_from_u64(0);
    FrontCarPipeline::train(
        PipelineConfig {
            hidden: [32, 16],
            train_scenarios: 600,
            epochs: 10,
            gamma: 1,
        },
        &mut rng,
    )
}

fn step_latency(c: &mut Criterion) {
    let mut pipe = pipeline_fixture();
    let mut rng = StdRng::seed_from_u64(1);
    let nominal: Vec<Scenario> = (0..64)
        .map(|_| Scenario::sample(Conditions::nominal(), &mut rng))
        .collect();
    let rain: Vec<Scenario> = (0..64)
        .map(|_| Scenario::sample(Conditions::heavy_rain(), &mut rng))
        .collect();

    let mut group = c.benchmark_group("case_study_step");
    group.bench_function("nominal", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % nominal.len();
            black_box(pipe.step(&nominal[i], &mut rng))
        });
    });
    group.bench_function("heavy_rain", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % rain.len();
            black_box(pipe.step(&rain[i], &mut rng))
        });
    });
    group.finish();
}

fn scenario_generation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("scenario_sample", |b| {
        b.iter(|| black_box(Scenario::sample(Conditions::dense_cutins(), &mut rng)));
    });
}

criterion_group! {
    name = benches;
    config = configured();
    targets = step_latency, scenario_generation
}
criterion_main!(benches);
