//! naps-sim: a bounded schedule-exploring model checker for the
//! concurrency protocols of `naps-serve` and `naps-gateway`.
//!
//! The checker drives a *model body* — a closure built entirely from
//! [`naps_sync::sim`] primitives — through a depth-first search over
//! thread interleavings.  Each run is one schedule: the scheduler in
//! `naps-sync` parks every thread at each visible operation and lets
//! exactly one proceed, recording the decision.  The explorer then
//! branches on every decision where another thread was enabled,
//! pruning with **sleep sets** (a sibling interleaving that only
//! reorders independent operations is never re-run) and cutting with
//! configurable depth and preemption bounds.
//!
//! Failures are deterministic: every run's schedule is a plain list of
//! thread choices, printable as a compact **schedule id**
//! (`v1-0121020…`) that [`replay`] turns back into the exact same
//! interleaving.  The `naps-sim` binary reads `NAPS_SIM_SCHEDULE` /
//! `NAPS_SIM_MODEL` to replay an id printed by a failing exploration.
//!
//! The protocol models themselves live in [`models`]; the
//! `cfg(naps_sim)`-gated `seeded` module reintroduces two historical
//! races (the PR 4 drift-epoch stamping race and the PR 7 worker-loss
//! ticket hang) that the checker must find.

#![forbid(unsafe_code)]

pub mod models;
#[cfg(naps_sim)]
pub mod seeded;

use naps_sync::sim::{Execution, Limits, Op, Outcome, RunResult, Schedule};

/// Bounds for one exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Per-run decision cap; a run that exceeds it counts as
    /// [`Outcome::DepthBounded`] and generates no children past the cap.
    pub max_decisions: usize,
    /// Cap on *executed* schedules (pruned replays do not count).
    /// When hit, the remaining frontier is abandoned and counted in
    /// [`ExploreReport::frontier_abandoned`].
    pub max_schedules: usize,
    /// If set, a branch whose cumulative preemption count would exceed
    /// the bound is skipped (counted, not explored).  `None` explores
    /// every preemption.
    pub preemption_bound: Option<usize>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_decisions: 4_000,
            max_schedules: 3_000,
            preemption_bound: None,
        }
    }
}

/// Where one exploration stopped and what it saw.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Distinct schedules actually executed to a terminal outcome
    /// (complete, failed, or depth-bounded).
    pub schedules: usize,
    /// Runs whose every enabled thread was asleep — subtrees proven
    /// covered by a sibling, at the cost of replaying the prefix.
    pub pruned_runs: usize,
    /// Branches never scheduled because the alternative thread was in
    /// the sleep set at the decision (covered without any replay).
    pub sleep_skipped: usize,
    /// Branches cut by the preemption bound.
    pub preemption_skipped: usize,
    /// Executed runs cut by the per-run decision cap.
    pub bounded: usize,
    /// Frontier jobs abandoned when `max_schedules` was hit.
    pub frontier_abandoned: usize,
    /// `true` when the DFS frontier emptied: every schedule not pruned
    /// or bounded away has been executed.
    pub exhausted: bool,
    /// The first failing run, if any (exploration stops on it).
    pub failure: Option<FailureReport>,
}

impl ExploreReport {
    /// Fraction of the considered schedule space dismissed without a
    /// full run: pruned replays and sleep-skipped branches over
    /// everything considered.
    pub fn pruning_ratio(&self) -> f64 {
        let pruned = self.pruned_runs + self.sleep_skipped;
        let total = self.schedules + pruned;
        if total == 0 {
            0.0
        } else {
            pruned as f64 / total as f64
        }
    }
}

/// A failing schedule, replayable by id.
#[derive(Debug, Clone)]
pub struct FailureReport {
    pub outcome: Outcome,
    /// Compact id accepted by [`decode_schedule_id`] and the
    /// `NAPS_SIM_SCHEDULE` environment variable.
    pub schedule_id: String,
    /// The raw choice list (`trace[i].chosen` for every decision).
    pub choices: Vec<usize>,
}

/// One pending DFS branch: a forced prefix plus the sleep set to
/// install at its last decision.
struct Job {
    choices: Vec<usize>,
    sleep: Vec<(usize, Op)>,
}

/// Explores interleavings of `body` depth-first until the space is
/// exhausted, a failure is found, or `max_schedules` runs have been
/// executed.
///
/// `body` must be deterministic apart from scheduling: rerun under the
/// same forced choices it must make the same choices itself (no
/// ambient randomness, time, or IO).  All the facade primitives
/// satisfy this by construction.
pub fn explore<F: Fn()>(cfg: &ExploreConfig, body: F) -> ExploreReport {
    let limits = Limits {
        max_decisions: cfg.max_decisions,
    };
    let mut report = ExploreReport::default();
    let mut stack = vec![Job {
        choices: Vec::new(),
        sleep: Vec::new(),
    }];
    while let Some(job) = stack.pop() {
        if report.schedules >= cfg.max_schedules {
            report.frontier_abandoned = stack.len() + 1;
            return report;
        }
        let run = Execution::run(
            &Schedule {
                choices: job.choices,
                sleep: job.sleep,
            },
            &limits,
            &body,
        );
        let deepen = match &run.outcome {
            Outcome::Pruned => {
                report.pruned_runs += 1;
                false
            }
            Outcome::DepthBounded => {
                report.schedules += 1;
                report.bounded += 1;
                true
            }
            Outcome::Complete => {
                report.schedules += 1;
                true
            }
            failure => {
                report.schedules += 1;
                let choices = run.choices();
                report.failure = Some(FailureReport {
                    outcome: failure.clone(),
                    schedule_id: encode_schedule_id(&choices),
                    choices,
                });
                return report;
            }
        };
        if deepen {
            branch(cfg, &run, &mut stack, &mut report);
        }
    }
    report.exhausted = true;
    report
}

/// Pushes one child job per unexplored alternative at every free
/// (non-forced) decision of `run`.  Forced decisions are skipped: their
/// siblings were generated when the parent branched there.
fn branch(cfg: &ExploreConfig, run: &RunResult, stack: &mut Vec<Job>, report: &mut ExploreReport) {
    for (i, rec) in run.trace.iter().enumerate() {
        if rec.forced {
            continue;
        }
        // Sleep-set discipline: each later sibling branch goes to sleep
        // on every earlier one, starting with the choice this run made.
        let mut done: Vec<(usize, Op)> = vec![(rec.chosen, rec.chosen_op)];
        for &(tid, op) in &rec.candidates {
            if tid == rec.chosen {
                continue;
            }
            if rec.sleeping.iter().any(|&(t, _)| t == tid) {
                report.sleep_skipped += 1;
                continue;
            }
            if let Some(bound) = cfg.preemption_bound {
                let preemptive = rec
                    .from
                    .is_some_and(|f| f != tid && rec.candidates.iter().any(|&(c, _)| c == f));
                if rec.preemptions_before + usize::from(preemptive) > bound {
                    report.preemption_skipped += 1;
                    continue;
                }
            }
            let mut choices: Vec<usize> = run.trace[..i].iter().map(|d| d.chosen).collect();
            choices.push(tid);
            let mut sleep = rec.sleeping.clone();
            sleep.extend(done.iter().copied());
            stack.push(Job { choices, sleep });
            done.push((tid, op));
        }
    }
}

/// Replays one schedule: the forced prefix is `choices`, and any
/// decisions beyond it follow the default deterministic policy.
pub fn replay<F: Fn()>(max_decisions: usize, choices: &[usize], body: F) -> RunResult {
    Execution::run(
        &Schedule {
            choices: choices.to_vec(),
            sleep: Vec::new(),
        },
        &Limits { max_decisions },
        body,
    )
}

/// Encodes a choice list as a compact schedule id.
///
/// `v1-` followed by one hex digit per choice when every thread id is
/// below 16 (the common case — models spawn a handful of threads);
/// `v2-` followed by dot-separated decimals otherwise.
pub fn encode_schedule_id(choices: &[usize]) -> String {
    if choices.iter().all(|&t| t < 16) {
        let mut s = String::with_capacity(3 + choices.len());
        s.push_str("v1-");
        for &t in choices {
            s.push(char::from_digit(t as u32, 16).expect("tid < 16 has a hex digit"));
        }
        s
    } else {
        let body: Vec<String> = choices.iter().map(|t| t.to_string()).collect();
        format!("v2-{}", body.join("."))
    }
}

/// Decodes a schedule id produced by [`encode_schedule_id`].
pub fn decode_schedule_id(id: &str) -> Option<Vec<usize>> {
    if let Some(hex) = id.strip_prefix("v1-") {
        hex.chars()
            .map(|c| c.to_digit(16).map(|d| d as usize))
            .collect()
    } else if let Some(body) = id.strip_prefix("v2-") {
        if body.is_empty() {
            return Some(Vec::new());
        }
        body.split('.').map(|p| p.parse::<usize>().ok()).collect()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_ids_round_trip() {
        for choices in [vec![], vec![0], vec![0, 1, 2, 1, 0, 15], vec![0usize; 100]] {
            let id = encode_schedule_id(&choices);
            assert!(id.starts_with("v1-"), "{id}");
            assert_eq!(decode_schedule_id(&id), Some(choices));
        }
        let wide = vec![0, 16, 3, 255];
        let id = encode_schedule_id(&wide);
        assert_eq!(id, "v2-0.16.3.255");
        assert_eq!(decode_schedule_id(&id), Some(wide));
    }

    #[test]
    fn bad_schedule_ids_are_rejected() {
        for bad in ["", "v1", "v3-000", "v1-0g", "v2-1.x", "0121"] {
            assert_eq!(decode_schedule_id(bad), None, "{bad}");
        }
    }
}
