//! Seeded historical bugs, compiled only under `cfg(naps_sim)`.
//!
//! Each fixture reintroduces a race this repository actually shipped
//! and later fixed, by flipping the corresponding protocol switch in
//! [`crate::models`] back to the broken behaviour.  The checker must
//! find both; the CI `sim` job fails if either goes unseen, and
//! `results/sim.json` records the catching schedule ids.

/// PR 4's drift-epoch stamping race: drift evidence is folded without
/// checking that the batch was judged under the epoch the detectors
/// are armed for.  A publish landing between a worker's epoch probe
/// and its fold stamps fresh detectors with stale evidence.
pub fn drift_epoch_race() {
    crate::models::epoch_stamping(false);
}

/// PR 7's worker-loss ticket hang: a dying worker neither fails the
/// engine nor drains orphaned requests nor wakes its siblings, so
/// queued tickets never resolve and submitters hang — the checker
/// reports the stuck schedule as a deadlock.
pub fn worker_loss_ticket_hang() {
    crate::models::worker_drain(false);
}

/// Both seeded bugs, keyed by the names used in `results/sim.json`
/// and `NAPS_SIM_MODEL`.
pub fn seeded_bugs() -> Vec<(&'static str, fn())> {
    vec![
        ("drift_epoch_race", drift_epoch_race as fn()),
        ("worker_loss_ticket_hang", worker_loss_ticket_hang as fn()),
    ]
}
