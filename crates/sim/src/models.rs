//! Executable models of the engine and gateway concurrency protocols.
//!
//! Each model is a deterministic closure over [`naps_sync::sim`]
//! primitives, small enough to explore (2 workers × 4 requests scale)
//! but shaped exactly like the production protocol it mirrors:
//!
//! - [`epoch_stamping`] — the serve engine's publish/epoch/drift
//!   protocol (PR 4): workers judge batches under a cached epoch and
//!   fold drift evidence; a publisher bumps the epoch and re-arms the
//!   detectors.  Invariant: no stale-epoch drift evidence.
//! - [`worker_drain`] — the engine's worker-death drain (PR 7): every
//!   accepted request's ticket resolves even when workers die
//!   mid-batch.  Invariant: accepted == answered + lost, and the run
//!   terminates.
//! - [`submitter_wakeup`] — a submitter blocked on queue capacity must
//!   observe shutdown.  Invariant: no lost wakeup, shutdown is sticky.
//! - [`registry_sweep`] — the gateway's registry shutdown sweep: no
//!   connection registers after close, every accepted request is
//!   answered before shutdown returns.
//!
//! [`stat_max`] additionally pins the `fetch_max` high-water-mark
//! pattern: the checker proves the load-then-store variant loses
//! updates and the `fetch_max` variant does not.
//!
//! The correct protocols pass **every** schedule; the seeded bugs (the
//! `bool` parameters, wired up only by the `cfg(naps_sim)`-gated
//! `seeded` module and its tests) are found by the checker.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, LockResult, PoisonError};

use naps_sync::sim::atomic::{AtomicBool, AtomicU64, AtomicUsize};
use naps_sync::sim::sync::{mpsc, Condvar, Mutex};
use naps_sync::sim::thread;

/// Poison recovery: a model thread that fails an invariant assert
/// poisons the mutexes it holds while unwinding, and sibling threads
/// keep running for a few decisions during teardown.  They must not
/// double-panic on the poison — the recorded outcome is the original
/// assert.
fn recover<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Model 1: epoch stamping (serve engine publish/drift protocol, PR 4)
// ---------------------------------------------------------------------------

struct Drift {
    /// Epoch the drift detectors are armed for.
    armed: u64,
    /// Epoch stamp of every batch folded since the last re-arm.
    evidence: Vec<u64>,
}

struct EpochShared {
    /// Generation counter published with `Release`, read with `Acquire`
    /// — the engine's cheap "did the model change?" probe.
    epoch: AtomicU64,
    /// The published snapshot; the model reduces it to its epoch stamp.
    published: Mutex<u64>,
    drift: Mutex<Drift>,
}

fn read_published(sh: &EpochShared) -> u64 {
    *recover(sh.published.lock())
}

/// Folds one judged batch into the drift detectors.  With
/// `guard_fold`, evidence judged under a stale epoch is skipped — the
/// PR 4 fix.  Without it, the historical race is live and the
/// invariant assert below can fire.
fn fold_drift(sh: &EpochShared, batch_epoch: u64, guard_fold: bool) {
    let mut d = recover(sh.drift.lock());
    if guard_fold && d.armed != batch_epoch {
        return;
    }
    d.evidence.push(batch_epoch);
    let armed = d.armed;
    assert!(
        d.evidence.iter().all(|&b| b == armed),
        "stale-epoch drift evidence: batch judged under epoch {batch_epoch} \
         folded into detectors armed for {armed}"
    );
}

fn rearm_drift(sh: &EpochShared, new_epoch: u64) {
    let mut d = recover(sh.drift.lock());
    d.armed = new_epoch;
    d.evidence.clear();
}

/// One publish: bump the snapshot under its lock, advance the epoch,
/// re-arm the detectors — the shape of `publish_layered`.
fn publish(sh: &EpochShared) {
    let mut slot = recover(sh.published.lock());
    let next = *slot + 1;
    *slot = next;
    drop(slot);
    // ordering: release — pairs with the worker's acquire probe; the
    // snapshot write above must be visible before the new epoch is.
    sh.epoch.store(next, Ordering::Release);
    rearm_drift(sh, next);
}

fn epoch_worker(sh: &EpochShared, batches: usize, guard_fold: bool) {
    let mut cached = read_published(sh);
    for _ in 0..batches {
        // ordering: acquire — pairs with the publisher's release store.
        if sh.epoch.load(Ordering::Acquire) != cached {
            cached = read_published(sh);
        }
        // The batch is judged under `cached`; a publish can land here,
        // between the probe and the fold — exactly the PR 4 window.
        fold_drift(sh, cached, guard_fold);
    }
}

/// 2 workers × 2 batches racing 1 publisher × 2 publishes.
pub fn epoch_stamping(guard_fold: bool) {
    let sh = Arc::new(EpochShared {
        epoch: AtomicU64::new(0),
        published: Mutex::new(0),
        drift: Mutex::new(Drift {
            armed: 0,
            evidence: Vec::new(),
        }),
    });
    let mut handles = Vec::new();
    for _ in 0..2 {
        let sh = Arc::clone(&sh);
        handles.push(thread::spawn(move || epoch_worker(&sh, 2, guard_fold)));
    }
    {
        let sh = Arc::clone(&sh);
        handles.push(thread::spawn(move || {
            for _ in 0..2 {
                publish(&sh);
            }
        }));
    }
    for h in handles {
        h.join().expect("epoch model thread panicked");
    }
}

// ---------------------------------------------------------------------------
// Model 2: worker-death drain (engine ticket protocol, PR 7)
// ---------------------------------------------------------------------------

const DRAIN_WORKERS: usize = 2;
const DRAIN_MAX_BATCH: usize = 2;

struct DrainReq {
    poison: bool,
    ticket: mpsc::Sender<u64>,
}

struct DrainState {
    /// Per-worker FIFO queues with round-robin placement, like the
    /// engine: a dying worker's queue strands its requests unless a
    /// sibling steals them or the death guard drains them.
    queues: Vec<VecDeque<DrainReq>>,
    next: usize,
    shutdown: bool,
    failed: bool,
}

struct DrainShared {
    state: Mutex<DrainState>,
    work: Condvar,
    alive: AtomicUsize,
}

/// Submits one request, returning the caller's ticket.  A rejected
/// submission (engine failed or shut down) drops the sender so the
/// ticket resolves `Err` immediately — the engine's `WorkerLost`.
fn drain_submit(sh: &DrainShared, poison: bool) -> mpsc::Receiver<u64> {
    let (tx, rx) = mpsc::channel();
    let mut st = recover(sh.state.lock());
    if !st.failed && !st.shutdown {
        let slot = st.next % DRAIN_WORKERS;
        st.next += 1;
        st.queues[slot].push_back(DrainReq { poison, ticket: tx });
        drop(st);
        sh.work.notify_one();
    }
    rx
}

/// Own FIFO front first, then steal half of the most-loaded sibling's
/// queue from the back — the engine's `next_batch` shape.
fn drain_next_batch(sh: &DrainShared, me: usize) -> Option<Vec<DrainReq>> {
    let mut st = recover(sh.state.lock());
    loop {
        if !st.queues[me].is_empty() {
            let n = st.queues[me].len().min(DRAIN_MAX_BATCH);
            return Some(st.queues[me].drain(..n).collect());
        }
        if let Some(victim) = (0..DRAIN_WORKERS)
            .filter(|&w| w != me && !st.queues[w].is_empty())
            .max_by_key(|&w| st.queues[w].len())
        {
            let keep = st.queues[victim].len() / 2;
            return Some(st.queues[victim].split_off(keep).into_iter().collect());
        }
        if st.shutdown {
            return None;
        }
        st = recover(sh.work.wait(st));
    }
}

/// The engine's `WorkerGuard` drop.  With `drain_on_death`, a dying
/// worker wakes its siblings and — if it was the last — fails the
/// engine and drains orphaned requests so their tickets disconnect
/// (the PR 7 fix).  Without it, the dying worker just vanishes and
/// queued tickets hang, which the checker reports as a deadlock.
fn drain_worker_guard(sh: &DrainShared, died: bool, drain_on_death: bool) {
    // ordering: acq-rel — the last decrement must observe every other
    // worker's writes before draining on their behalf.
    let last = sh.alive.fetch_sub(1, Ordering::AcqRel) == 1;
    if died && !drain_on_death {
        return;
    }
    if !died && !last {
        return;
    }
    let orphans = drain_take_orphans(sh, died, last);
    sh.work.notify_all();
    drop(orphans);
}

fn drain_take_orphans(sh: &DrainShared, died: bool, last: bool) -> Vec<VecDeque<DrainReq>> {
    let mut st = recover(sh.state.lock());
    if died && last {
        st.failed = true;
        st.shutdown = true;
    }
    if last {
        st.queues.iter_mut().map(std::mem::take).collect()
    } else {
        Vec::new()
    }
}

fn drain_worker(sh: &DrainShared, me: usize, drain_on_death: bool) {
    while let Some(batch) = drain_next_batch(sh, me) {
        for req in batch {
            if req.poison {
                // The worker "dies" mid-batch: the rest of the batch
                // (and the poison request's own ticket) is dropped as
                // the unwind would drop it, then the death guard runs.
                // Death is an early return, not a real panic — panics
                // are reserved for invariant violations.
                drain_worker_guard(sh, true, drain_on_death);
                return;
            }
            let _ = req.ticket.send(1);
        }
    }
    drain_worker_guard(sh, false, drain_on_death);
}

fn drain_begin_shutdown(sh: &DrainShared) {
    let mut st = recover(sh.state.lock());
    st.shutdown = true;
    drop(st);
    sh.work.notify_all();
}

/// 2 workers × 4 requests with poison at slots 0 and 1 — one per
/// worker queue under round-robin placement — so workers can die with
/// requests both in hand and stranded in their queues.
pub fn worker_drain(drain_on_death: bool) {
    let sh = Arc::new(DrainShared {
        state: Mutex::new(DrainState {
            queues: (0..DRAIN_WORKERS).map(|_| VecDeque::new()).collect(),
            next: 0,
            shutdown: false,
            failed: false,
        }),
        work: Condvar::new(),
        alive: AtomicUsize::new(DRAIN_WORKERS),
    });
    let mut handles = Vec::new();
    for me in 0..DRAIN_WORKERS {
        let sh = Arc::clone(&sh);
        handles.push(thread::spawn(move || drain_worker(&sh, me, drain_on_death)));
    }
    let tickets: Vec<_> = [true, true, false, false]
        .into_iter()
        .map(|poison| drain_submit(&sh, poison))
        .collect();
    let mut answered = 0usize;
    let mut lost = 0usize;
    for rx in tickets {
        match rx.recv() {
            Ok(_) => answered += 1,
            Err(_) => lost += 1,
        }
    }
    assert_eq!(answered + lost, 4, "every accepted request must resolve");
    drain_begin_shutdown(&sh);
    for h in handles {
        h.join().expect("drain model worker panicked");
    }
}

// ---------------------------------------------------------------------------
// Model 3: blocked-submitter wakeup on shutdown (engine enqueue loop)
// ---------------------------------------------------------------------------

const WAKEUP_CAPACITY: usize = 1;

struct WakeupState {
    pending: usize,
    shutdown: bool,
}

struct WakeupShared {
    state: Mutex<WakeupState>,
    work: Condvar,
    space: Condvar,
}

/// The engine's enqueue loop: block on `space` while the queue is
/// full, re-checking shutdown after every wakeup.  `false` = rejected
/// because the engine shut down.
fn wakeup_submit(sh: &WakeupShared) -> bool {
    let mut st = recover(sh.state.lock());
    loop {
        if st.shutdown {
            return false;
        }
        if st.pending < WAKEUP_CAPACITY {
            st.pending += 1;
            drop(st);
            sh.work.notify_one();
            return true;
        }
        st = recover(sh.space.wait(st));
    }
}

/// One worker drain step; `false` = shutdown observed with an empty
/// queue (the worker exits).
fn wakeup_drain_one(sh: &WakeupShared) -> bool {
    let mut st = recover(sh.state.lock());
    loop {
        if st.pending > 0 {
            st.pending -= 1;
            drop(st);
            sh.space.notify_all();
            return true;
        }
        if st.shutdown {
            return false;
        }
        st = recover(sh.work.wait(st));
    }
}

fn wakeup_begin_shutdown(sh: &WakeupShared) {
    let mut st = recover(sh.state.lock());
    st.shutdown = true;
    drop(st);
    sh.work.notify_all();
    sh.space.notify_all();
}

/// A submitter pushing 3 requests through a capacity-1 queue races a
/// draining worker and a shutdown.  The checker proves no interleaving
/// strands the submitter in `space.wait` (the lost-wakeup would show
/// up as a deadlock) and that shutdown rejection is sticky.
pub fn submitter_wakeup() {
    let sh = Arc::new(WakeupShared {
        state: Mutex::new(WakeupState {
            pending: 0,
            shutdown: false,
        }),
        work: Condvar::new(),
        space: Condvar::new(),
    });
    let submitter = {
        let sh = Arc::clone(&sh);
        thread::spawn(move || {
            let mut accepted = Vec::new();
            for _ in 0..3 {
                accepted.push(wakeup_submit(&sh));
            }
            accepted
        })
    };
    let worker = {
        let sh = Arc::clone(&sh);
        thread::spawn(move || while wakeup_drain_one(&sh) {})
    };
    wakeup_begin_shutdown(&sh);
    let accepted = submitter.join().expect("submitter panicked");
    worker.join().expect("wakeup model worker panicked");
    let first_rejected = accepted.iter().position(|ok| !ok).unwrap_or(accepted.len());
    assert!(
        accepted[first_rejected..].iter().all(|ok| !ok),
        "a submit succeeded after shutdown rejected an earlier one"
    );
}

// ---------------------------------------------------------------------------
// Model 4: gateway registry shutdown sweep
// ---------------------------------------------------------------------------

struct RegState {
    closed: bool,
    open: Vec<u64>,
    handles: Vec<thread::JoinHandle<()>>,
}

struct RegShared {
    shutting_down: AtomicBool,
    reg: Mutex<RegState>,
    accepted: AtomicU64,
    answered: AtomicU64,
}

fn reg_conn(sh: &RegShared, id: u64) {
    for _ in 0..2 {
        // ordering: seq-cst — mirrors the gateway's shutdown flag.
        if sh.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        // ordering: stat counters; compared only after every join.
        sh.accepted.fetch_add(1, Ordering::Relaxed);
        // ordering: stat counters; compared only after every join.
        sh.answered.fetch_add(1, Ordering::Relaxed);
    }
    reg_deregister(sh, id);
}

fn reg_deregister(sh: &RegShared, id: u64) {
    let mut reg = recover(sh.reg.lock());
    reg.open.retain(|&x| x != id);
}

/// Registers and spawns one connection under the registry lock —
/// refused atomically once the registry is closed, exactly like
/// `spawn_connection`.
fn reg_accept_one(sh: &Arc<RegShared>, id: u64) -> bool {
    let mut reg = recover(sh.reg.lock());
    if reg.closed {
        return false;
    }
    reg.open.push(id);
    let conn = Arc::clone(sh);
    reg.handles.push(thread::spawn(move || reg_conn(&conn, id)));
    true
}

fn reg_acceptor(sh: &Arc<RegShared>) {
    for id in 0..3u64 {
        // ordering: seq-cst — mirrors the gateway's shutdown flag.
        if sh.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        if !reg_accept_one(sh, id) {
            break;
        }
    }
}

/// Closes the registry and takes every live handle, atomically.
fn reg_sweep(sh: &RegShared) -> Vec<thread::JoinHandle<()>> {
    let mut reg = recover(sh.reg.lock());
    reg.closed = true;
    std::mem::take(&mut reg.handles)
}

fn reg_assert_swept(sh: &RegShared) {
    let reg = recover(sh.reg.lock());
    assert!(
        reg.open.is_empty(),
        "a connection is still registered after the shutdown sweep"
    );
    assert!(
        reg.handles.is_empty(),
        "a connection was spawned after the registry closed"
    );
}

/// An acceptor registering up to 3 two-request connections races a
/// shutdown that flags, closes, sweeps, and joins.  Invariants: no
/// registration after close, registry empty after the sweep joins,
/// and accepted == answered.
pub fn registry_sweep() {
    let sh = Arc::new(RegShared {
        shutting_down: AtomicBool::new(false),
        reg: Mutex::new(RegState {
            closed: false,
            open: Vec::new(),
            handles: Vec::new(),
        }),
        accepted: AtomicU64::new(0),
        answered: AtomicU64::new(0),
    });
    let acceptor = {
        let sh = Arc::clone(&sh);
        thread::spawn(move || reg_acceptor(&sh))
    };
    // ordering: seq-cst — mirrors the gateway's shutdown flag.
    sh.shutting_down.store(true, Ordering::SeqCst);
    let conns = reg_sweep(&sh);
    acceptor.join().expect("acceptor panicked");
    for conn in conns {
        conn.join().expect("connection panicked");
    }
    reg_assert_swept(&sh);
    assert_eq!(
        // ordering: final reads, every thread already joined.
        sh.accepted.load(Ordering::Relaxed),
        // ordering: final reads, every thread already joined.
        sh.answered.load(Ordering::Relaxed),
        "an accepted request was dropped without an answer"
    );
}

// ---------------------------------------------------------------------------
// Model 5: statistic high-water marks (fetch_max regression pin)
// ---------------------------------------------------------------------------

/// Two threads record values 2 and 3 into a shared maximum.  With
/// `use_fetch_max` the mark is exact on every schedule; with the
/// load-compare-store pattern the checker finds the interleaving where
/// the larger value is overwritten.
pub fn stat_max(use_fetch_max: bool) {
    let max = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for v in [2u64, 3] {
        let max = Arc::clone(&max);
        handles.push(thread::spawn(move || {
            if use_fetch_max {
                // ordering: stat high-water mark — atomicity of the
                // max, not ordering, is what matters.
                max.fetch_max(v, Ordering::Relaxed);
            } else {
                // The pre-fetch_max pattern: two decision points, so a
                // concurrent store can land between them and a smaller
                // value can win.
                // ordering: stat high-water mark (racy on purpose).
                if v > max.load(Ordering::Relaxed) {
                    // ordering: stat high-water mark (racy on purpose).
                    max.store(v, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("stat thread panicked");
    }
    assert_eq!(
        // ordering: final read, both threads already joined.
        max.load(Ordering::Relaxed),
        3,
        "high-water mark lost an update"
    );
}

/// The four protocol models with the correct (shipped) protocol wired
/// in, keyed by the names used in `results/sim.json` and
/// `NAPS_SIM_MODEL`.
pub fn protocol_models() -> Vec<(&'static str, fn())> {
    fn epoch() {
        epoch_stamping(true);
    }
    fn drain() {
        worker_drain(true);
    }
    vec![
        ("epoch_stamping", epoch as fn()),
        ("worker_drain", drain as fn()),
        ("submitter_wakeup", submitter_wakeup as fn()),
        ("registry_sweep", registry_sweep as fn()),
    ]
}
