//! The `naps-sim` binary: the CI smoke exploration and the schedule
//! replay tool.
//!
//! Default mode explores every protocol model under bounded DFS,
//! verifies the invariants on every schedule, requires at least
//! [`MIN_SCHEDULES`] distinct schedules per protocol, pins the
//! `fetch_max` high-water-mark regression, and — when built with
//! `RUSTFLAGS="--cfg naps_sim"` — confirms the checker finds both
//! seeded historical races.  Results land in `results/sim.json`
//! (`schema_version` 1); any violation or missed seeded bug makes the
//! exit code non-zero.
//!
//! Replay mode: set `NAPS_SIM_MODEL` to a model name and
//! `NAPS_SIM_SCHEDULE` to a schedule id printed by a failing
//! exploration, and the binary re-executes exactly that interleaving.

use std::env;
use std::fs;
use std::process::ExitCode;

use naps_sim::{decode_schedule_id, explore, replay, ExploreConfig, ExploreReport};
use naps_sync::sim::Outcome;

/// Per-protocol floor on distinct executed schedules in the smoke run.
const MIN_SCHEDULES: usize = 1_000;

/// Decision cap for replay mode, matching the smoke configuration.
const REPLAY_MAX_DECISIONS: usize = 4_000;

fn smoke_config() -> ExploreConfig {
    ExploreConfig {
        max_decisions: 4_000,
        max_schedules: 2_000,
        preemption_bound: None,
    }
}

/// Every model the binary can explore or replay by name.
fn all_models() -> Vec<(&'static str, fn())> {
    fn stat_buggy() {
        naps_sim::models::stat_max(false);
    }
    fn stat_fixed() {
        naps_sim::models::stat_max(true);
    }
    let mut v = naps_sim::models::protocol_models();
    v.push(("stat_max_buggy", stat_buggy as fn()));
    v.push(("stat_max_fixed", stat_fixed as fn()));
    #[cfg(naps_sim)]
    v.extend(naps_sim::seeded::seeded_bugs());
    v
}

fn main() -> ExitCode {
    match env::var("NAPS_SIM_SCHEDULE") {
        Ok(id) => replay_mode(&id),
        Err(_) => smoke_mode(),
    }
}

// ---------------------------------------------------------------------------
// Replay mode
// ---------------------------------------------------------------------------

fn replay_mode(id: &str) -> ExitCode {
    let models = all_models();
    let wanted = env::var("NAPS_SIM_MODEL").unwrap_or_default();
    let Some(&(name, body)) = models.iter().find(|(n, _)| *n == wanted) else {
        let names: Vec<&str> = models.iter().map(|&(n, _)| n).collect();
        eprintln!(
            "naps-sim: NAPS_SIM_MODEL must name the model to replay; one of: {}",
            names.join(", ")
        );
        return ExitCode::from(2);
    };
    let Some(choices) = decode_schedule_id(id) else {
        eprintln!("naps-sim: NAPS_SIM_SCHEDULE is not a valid schedule id: {id}");
        return ExitCode::from(2);
    };
    let run = replay(REPLAY_MAX_DECISIONS, &choices, body);
    println!("model:    {name}");
    println!(
        "schedule: {id} ({} forced choices, {} decisions executed)",
        choices.len(),
        run.trace.len()
    );
    println!("outcome:  {:?}", run.outcome);
    if matches!(run.outcome, Outcome::ReplayDivergence { .. }) {
        eprintln!("naps-sim: the schedule does not fit this model (wrong model or stale id)");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Smoke mode
// ---------------------------------------------------------------------------

struct ProtocolRow {
    name: &'static str,
    report: ExploreReport,
    ok: bool,
}

fn explore_protocol(cfg: &ExploreConfig, name: &'static str, body: fn()) -> ProtocolRow {
    let report = explore(cfg, body);
    let mut ok = true;
    println!(
        "{name}: {} schedules ({} pruned runs, {} sleep-skipped, {} bounded, \
         pruning ratio {:.2}{})",
        report.schedules,
        report.pruned_runs,
        report.sleep_skipped,
        report.bounded,
        report.pruning_ratio(),
        if report.exhausted { ", exhausted" } else { "" },
    );
    if let Some(f) = &report.failure {
        ok = false;
        println!("  FAILURE: {:?}", f.outcome);
        println!(
            "  replay: NAPS_SIM_MODEL={name} NAPS_SIM_SCHEDULE={} cargo run -p naps-sim",
            f.schedule_id
        );
    } else if report.schedules < MIN_SCHEDULES {
        ok = false;
        println!(
            "  FAILURE: only {} schedules executed, need at least {MIN_SCHEDULES}",
            report.schedules
        );
    }
    ProtocolRow { name, report, ok }
}

/// Explores a model expected to fail, returning the catching failure.
fn expect_caught(name: &str, body: fn()) -> (bool, Option<String>, String) {
    let cfg = ExploreConfig {
        max_schedules: 5_000,
        ..smoke_config()
    };
    let report = explore(&cfg, body);
    match report.failure {
        Some(f) => {
            println!(
                "{name}: caught after {} schedules — {:?} (schedule {})",
                report.schedules, f.outcome, f.schedule_id
            );
            (true, Some(f.schedule_id), format!("{:?}", f.outcome))
        }
        None => {
            println!(
                "{name}: MISSED — {} schedules explored without finding the seeded bug",
                report.schedules
            );
            (false, None, String::new())
        }
    }
}

fn smoke_mode() -> ExitCode {
    let cfg = smoke_config();
    println!(
        "naps-sim smoke: max {} schedules/protocol, depth {} decisions",
        cfg.max_schedules, cfg.max_decisions
    );

    let mut rows = Vec::new();
    for (name, body) in naps_sim::models::protocol_models() {
        rows.push(explore_protocol(&cfg, name, body));
    }

    // fetch_max regression pin: the load-compare-store max must fail,
    // the fetch_max max must be clean on the full (exhausted) space.
    let (stat_caught, stat_id, _) = expect_caught("stat_max_buggy", || {
        naps_sim::models::stat_max(false);
    });
    let stat_fixed = explore(&cfg, || naps_sim::models::stat_max(true));
    let stat_fixed_clean = stat_fixed.failure.is_none() && stat_fixed.exhausted;
    println!(
        "stat_max_fixed: {} schedules, clean={stat_fixed_clean}",
        stat_fixed.schedules
    );

    let seeded_json = seeded_section();
    let protocols_ok = rows.iter().all(|r| r.ok);
    let pass = protocols_ok && stat_caught && stat_fixed_clean && seeded_json.1;

    let json = render_json(
        &cfg,
        &rows,
        stat_caught,
        &stat_id,
        stat_fixed_clean,
        &seeded_json.0,
        pass,
    );
    if let Err(e) = fs::create_dir_all("results").and_then(|()| fs::write("results/sim.json", json))
    {
        eprintln!("naps-sim: cannot write results/sim.json: {e}");
        return ExitCode::from(2);
    }
    println!(
        "naps-sim smoke: {} — results/sim.json written",
        if pass { "PASS" } else { "FAIL" }
    );
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the seeded-bug fixtures when compiled in.  Returns the JSON
/// fragment for the `"seeded"` key and whether this section passes.
#[cfg(naps_sim)]
fn seeded_section() -> (String, bool) {
    let mut parts = Vec::new();
    let mut all = true;
    for (name, body) in naps_sim::seeded::seeded_bugs() {
        let (caught, id, outcome) = expect_caught(name, body);
        all &= caught;
        parts.push(format!(
            "\"{name}\": {{\"caught\": {caught}, \"schedule_id\": {}, \"outcome\": \"{}\"}}",
            match id {
                Some(i) => format!("\"{i}\""),
                None => "null".to_string(),
            },
            json_escape(&outcome),
        ));
    }
    let json = format!(
        "{{\"enabled\": true, {}, \"both_caught\": {all}}}",
        parts.join(", ")
    );
    (json, all)
}

/// Without `cfg(naps_sim)` the fixtures do not exist; the section says
/// so and `both_caught` is absent, so the CI grep fails loudly if the
/// cfg was dropped.
#[cfg(not(naps_sim))]
fn seeded_section() -> (String, bool) {
    println!("seeded fixtures not compiled in (build with RUSTFLAGS=\"--cfg naps_sim\")");
    ("{\"enabled\": false}".to_string(), true)
}

fn render_json(
    cfg: &ExploreConfig,
    rows: &[ProtocolRow],
    stat_caught: bool,
    stat_id: &Option<String>,
    stat_fixed_clean: bool,
    seeded: &str,
    pass: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"tool\": \"naps-sim\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"max_decisions\": {}, \"max_schedules\": {}, \"preemption_bound\": {}, \"min_schedules\": {MIN_SCHEDULES}}},\n",
        cfg.max_decisions,
        cfg.max_schedules,
        match cfg.preemption_bound {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        }
    ));
    out.push_str("  \"protocols\": {\n");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let failure = match &r.report.failure {
                Some(f) => format!(
                    "{{\"outcome\": \"{}\", \"schedule_id\": \"{}\"}}",
                    json_escape(&format!("{:?}", f.outcome)),
                    f.schedule_id
                ),
                None => "null".to_string(),
            };
            format!(
                "    \"{}\": {{\"schedules\": {}, \"pruned_runs\": {}, \"sleep_skipped\": {}, \
                 \"preemption_skipped\": {}, \"bounded\": {}, \"exhausted\": {}, \
                 \"pruning_ratio\": {:.4}, \"ok\": {}, \"failure\": {}}}",
                r.name,
                r.report.schedules,
                r.report.pruned_runs,
                r.report.sleep_skipped,
                r.report.preemption_skipped,
                r.report.bounded,
                r.report.exhausted,
                r.report.pruning_ratio(),
                r.ok,
                failure
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str(&format!(
        "  \"stat_max\": {{\"buggy_caught\": {stat_caught}, \"buggy_schedule_id\": {}, \"fetch_max_clean\": {stat_fixed_clean}}},\n",
        match stat_id {
            Some(i) => format!("\"{i}\""),
            None => "null".to_string(),
        }
    ));
    out.push_str(&format!("  \"seeded\": {seeded},\n"));
    out.push_str(&format!("  \"pass\": {pass}\n}}\n"));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
