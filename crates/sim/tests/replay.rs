//! A failing exploration's schedule id deterministically replays the
//! exact interleaving — decode(encode(choices)) drives the same trace
//! to the same outcome, twice.

use naps_sim::models;
use naps_sim::{decode_schedule_id, explore, replay, ExploreConfig};
use naps_sync::sim::Outcome;

#[test]
fn failing_schedule_round_trips_through_its_id() {
    let cfg = ExploreConfig::default();
    let r = explore(&cfg, || models::stat_max(false));
    let f = r.failure.expect("the racy max must fail somewhere");
    let choices = decode_schedule_id(&f.schedule_id).expect("own ids must decode");
    assert_eq!(choices, f.choices, "id must encode the exact choice list");
    let first = replay(cfg.max_decisions, &choices, || models::stat_max(false));
    let second = replay(cfg.max_decisions, &choices, || models::stat_max(false));
    for run in [&first, &second] {
        match &run.outcome {
            Outcome::Panic { message, .. } => {
                assert!(message.contains("high-water mark"), "{message}")
            }
            other => panic!("replay changed the outcome: {other:?}"),
        }
    }
    assert_eq!(
        first.choices(),
        second.choices(),
        "replay must be deterministic"
    );
}
