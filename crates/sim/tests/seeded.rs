//! The seeded historical races (compiled only under `cfg(naps_sim)`)
//! must be found by the checker, and their schedule ids must replay.

#![cfg(naps_sim)]

use naps_sim::{decode_schedule_id, explore, replay, seeded, ExploreConfig};
use naps_sync::sim::Outcome;

fn cfg() -> ExploreConfig {
    ExploreConfig {
        max_schedules: 5_000,
        ..ExploreConfig::default()
    }
}

#[test]
fn seeded_drift_epoch_race_is_caught() {
    let r = explore(&cfg(), seeded::drift_epoch_race);
    let f = r
        .failure
        .expect("the checker must find the PR 4 drift-epoch race");
    match &f.outcome {
        Outcome::Panic { message, .. } => {
            assert!(message.contains("stale-epoch"), "{message}")
        }
        other => panic!("expected the stale-evidence assert, got {other:?}"),
    }
}

#[test]
fn seeded_ticket_hang_is_caught_and_replays_by_id() {
    let r = explore(&cfg(), seeded::worker_loss_ticket_hang);
    let f = r
        .failure
        .expect("the checker must find the PR 7 ticket hang");
    assert!(
        matches!(f.outcome, Outcome::Deadlock(_)),
        "the hang should surface as a deadlock, got {:?}",
        f.outcome
    );
    let choices = decode_schedule_id(&f.schedule_id).expect("own ids must decode");
    assert_eq!(choices, f.choices);
    let run = replay(
        cfg().max_decisions,
        &choices,
        seeded::worker_loss_ticket_hang,
    );
    assert!(
        matches!(run.outcome, Outcome::Deadlock(_)),
        "replay changed the outcome: {:?}",
        run.outcome
    );
}
