//! The shipped protocols hold on every explored schedule, and the
//! checker demonstrably catches protocol bugs (the racy high-water
//! mark) — so a clean exploration means something.

use naps_sim::models;
use naps_sim::{explore, ExploreConfig};
use naps_sync::sim::Outcome;

fn cfg(max_schedules: usize) -> ExploreConfig {
    ExploreConfig {
        max_decisions: 4_000,
        max_schedules,
        preemption_bound: None,
    }
}

#[test]
fn epoch_stamping_protocol_holds() {
    let r = explore(&cfg(300), || models::epoch_stamping(true));
    assert!(r.failure.is_none(), "{:?}", r.failure);
    assert_eq!(r.schedules, 300, "model too small to fill the cap");
}

#[test]
fn worker_drain_protocol_holds() {
    let r = explore(&cfg(300), || models::worker_drain(true));
    assert!(r.failure.is_none(), "{:?}", r.failure);
    assert_eq!(r.schedules, 300, "model too small to fill the cap");
}

#[test]
fn submitter_wakeup_protocol_holds_exhaustively() {
    let r = explore(&cfg(2_000), models::submitter_wakeup);
    assert!(r.failure.is_none(), "{:?}", r.failure);
    assert!(
        r.exhausted,
        "expected the full space within 2000 schedules, got {}",
        r.schedules
    );
}

#[test]
fn registry_sweep_protocol_holds() {
    let r = explore(&cfg(300), models::registry_sweep);
    assert!(r.failure.is_none(), "{:?}", r.failure);
    assert_eq!(r.schedules, 300, "model too small to fill the cap");
}

#[test]
fn racy_stat_max_is_caught() {
    let r = explore(&cfg(500), || models::stat_max(false));
    let f = r
        .failure
        .expect("load-compare-store max must lose an update");
    match &f.outcome {
        Outcome::Panic { message, .. } => {
            assert!(message.contains("high-water mark"), "{message}")
        }
        other => panic!("expected a panic outcome, got {other:?}"),
    }
}

#[test]
fn fetch_max_stat_is_clean_on_the_full_space() {
    let r = explore(&cfg(500), || models::stat_max(true));
    assert!(r.failure.is_none(), "{:?}", r.failure);
    assert!(r.exhausted, "tiny model must be exhaustible");
}

#[test]
fn preemption_bound_hides_preemption_races() {
    // The lost update needs a mid-RMW preemption; with a bound of 0
    // the checker runs threads to completion and cannot see it — and
    // reports what it skipped.
    let bounded = ExploreConfig {
        preemption_bound: Some(0),
        ..cfg(500)
    };
    let r = explore(&bounded, || models::stat_max(false));
    assert!(r.failure.is_none(), "{:?}", r.failure);
    assert!(r.preemption_skipped > 0, "bound should have cut branches");
}
